// Router-queue loss models: drop-tail and RED (paper §1).
//
// The paper motivates error spreading with the observation that bursty
// loss "has been shown to arise from the drop-tail queuing discipline
// adopted in many Internet routers", and that RED gateways would reduce it
// but drop-tail remains deployed.  This module reproduces that claim from
// first principles: a slotted bottleneck queue shared with on/off
// cross-traffic, drained at a fixed service rate, dropping either at the
// tail (queue full) or probabilistically by RED's EWMA of the queue
// length.  bench_gateways measures the loss-burst structure each
// discipline produces and how much error spreading helps under each.
#pragma once

#include <cstddef>

#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace espread::net {

/// Discipline of the bottleneck queue.
enum class QueueDiscipline {
    kDropTail,  ///< drop arrivals when the buffer is full
    kRed,       ///< Random Early Detection: probabilistic early drops
};

/// Bottleneck gateway parameters.  Time is slotted: one slot per probe
/// (foreground) packet; cross-traffic packets share the queue.
struct GatewayConfig {
    QueueDiscipline discipline = QueueDiscipline::kDropTail;
    std::size_t capacity = 20;        ///< buffer size in packets
    double service_per_slot = 3.0;    ///< packets drained per slot
    /// On/off (Markov-modulated) cross-traffic: in the ON state a burst of
    /// `cross_burst_rate` packets arrives per slot; OFF sends nothing.
    double p_stay_on = 0.9;
    double p_stay_off = 0.95;
    double cross_burst_rate = 6.0;
    // RED parameters (fractions of capacity / probability).
    double red_min_threshold = 0.25;  ///< min_th as a fraction of capacity
    double red_max_threshold = 0.75;  ///< max_th as a fraction of capacity
    double red_max_drop = 0.2;        ///< max_p at max_th
    double red_weight = 0.1;          ///< EWMA weight of the queue average
};

/// Slotted simulation of one bottleneck queue.
class Gateway {
public:
    /// Throws std::invalid_argument on non-positive service rate, zero
    /// capacity, probabilities outside [0, 1], or RED thresholds out of
    /// order.
    Gateway(GatewayConfig config, sim::Rng rng);

    /// Advances one slot: cross-traffic arrives, the foreground (probe)
    /// packet arrives, the queue drains.  Returns true if the FOREGROUND
    /// packet was dropped.
    bool offer_packet();

    /// Attaches a trace sink (non-owning; nullptr detaches).  Each probe
    /// packet then emits PacketSent/PacketLost on the gateway track; the
    /// event time is the slot index (the gateway simulation is slotted,
    /// not clocked).
    void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

    std::size_t offered() const noexcept { return offered_; }
    std::size_t dropped() const noexcept { return dropped_; }

    /// Lengths of maximal runs of consecutive dropped probe packets; a run
    /// still open at call time counts as complete, so the histogram always
    /// sums to `dropped()`.  The burst-length distribution — not just the
    /// max — is what separates drop-tail from RED.
    sim::Histogram loss_runs() const;

    /// Current instantaneous queue length (packets).
    double queue_length() const noexcept { return queue_; }

    /// RED's running average of the queue length.
    double average_queue() const noexcept { return avg_queue_; }

    std::size_t cross_offered() const noexcept { return cross_offered_; }
    std::size_t cross_dropped() const noexcept { return cross_dropped_; }

    const GatewayConfig& config() const noexcept { return config_; }

private:
    bool admit(bool foreground);

    GatewayConfig config_;
    sim::Rng rng_;
    double queue_ = 0.0;       // packets queued (fractional service allowed)
    double avg_queue_ = 0.0;   // RED EWMA
    bool cross_on_ = false;
    std::size_t cross_offered_ = 0;
    std::size_t cross_dropped_ = 0;
    std::size_t offered_ = 0;
    std::size_t dropped_ = 0;
    std::size_t loss_run_ = 0;
    sim::Histogram loss_runs_;
    obs::TraceSink* trace_ = nullptr;
};

}  // namespace espread::net
