#include "net/gateway.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace espread::net {

Gateway::Gateway(GatewayConfig config, sim::Rng rng)
    : config_(config), rng_(std::move(rng)) {
    const auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (config_.capacity == 0) {
        throw std::invalid_argument("Gateway: capacity must be positive");
    }
    if (config_.service_per_slot <= 0.0) {
        throw std::invalid_argument("Gateway: service rate must be positive");
    }
    if (config_.cross_burst_rate < 0.0) {
        throw std::invalid_argument("Gateway: negative cross-traffic rate");
    }
    if (!prob(config_.p_stay_on) || !prob(config_.p_stay_off) ||
        !prob(config_.red_max_drop) || !prob(config_.red_weight)) {
        throw std::invalid_argument("Gateway: probabilities must be in [0, 1]");
    }
    if (config_.red_min_threshold < 0.0 ||
        config_.red_max_threshold > 1.0 ||
        config_.red_min_threshold >= config_.red_max_threshold) {
        throw std::invalid_argument("Gateway: RED thresholds out of order");
    }
}

bool Gateway::admit(bool foreground) {
    const double cap = static_cast<double>(config_.capacity);
    if (config_.discipline == QueueDiscipline::kDropTail) {
        if (queue_ + 1.0 > cap) {
            if (!foreground) ++cross_dropped_;
            return false;
        }
        queue_ += 1.0;
        return true;
    }
    // RED: update the average, drop early with probability ramping from 0
    // at min_th to max_p at max_th; always drop above max_th or when full.
    avg_queue_ = (1.0 - config_.red_weight) * avg_queue_ +
                 config_.red_weight * queue_;
    const double min_th = config_.red_min_threshold * cap;
    const double max_th = config_.red_max_threshold * cap;
    bool drop = false;
    if (queue_ + 1.0 > cap || avg_queue_ >= max_th) {
        drop = true;
    } else if (avg_queue_ > min_th) {
        const double p =
            config_.red_max_drop * (avg_queue_ - min_th) / (max_th - min_th);
        drop = rng_.bernoulli(p);
    }
    if (drop) {
        if (!foreground) ++cross_dropped_;
        return false;
    }
    queue_ += 1.0;
    return true;
}

bool Gateway::offer_packet() {
    // Cross-traffic state and arrivals for this slot.
    const double stay = cross_on_ ? config_.p_stay_on : config_.p_stay_off;
    if (!rng_.bernoulli(stay)) cross_on_ = !cross_on_;
    if (cross_on_) {
        const double rate = config_.cross_burst_rate;
        std::size_t arrivals = static_cast<std::size_t>(rate);
        if (rng_.bernoulli(rate - std::floor(rate))) ++arrivals;
        for (std::size_t i = 0; i < arrivals; ++i) {
            ++cross_offered_;
            admit(false);
        }
    }
    // The foreground probe packet.
    const bool admitted = admit(true);
    const std::size_t slot = offered_++;
    if (admitted) {
        if (loss_run_ > 0) {
            loss_runs_.add(static_cast<std::int64_t>(loss_run_));
            loss_run_ = 0;
        }
    } else {
        ++dropped_;
        ++loss_run_;
    }
    if (trace_) {
        obs::TraceEvent e;
        e.time = static_cast<sim::SimTime>(slot);
        e.type = admitted ? obs::EventType::kPacketSent
                          : obs::EventType::kPacketLost;
        e.actor = obs::Actor::kGateway;
        e.seq = slot;
        trace_->record(e);
    }
    // Drain the queue.
    queue_ = std::max(0.0, queue_ - config_.service_per_slot);
    return !admitted;
}

sim::Histogram Gateway::loss_runs() const {
    sim::Histogram h = loss_runs_;
    if (loss_run_ > 0) h.add(static_cast<std::int64_t>(loss_run_));
    return h;
}

}  // namespace espread::net
