// Simulated unreliable datagram channel (paper §4.2 protocol setting).
//
// The paper's protocol runs over UDP: no retransmission below the
// application, packets serialized onto a fixed-bandwidth link with fixed
// propagation delay, and per-packet loss drawn from the Gilbert model.
// Channel<Msg> is unidirectional; a bidirectional session composes two
// channels (data and feedback) over one EventQueue.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "net/gilbert.hpp"
#include "sim/event_queue.hpp"

namespace espread::net {

/// Physical link parameters.
struct LinkConfig {
    double bandwidth_bps = 1.2e6;          ///< paper default 1.2 Mb/s
    sim::SimTime propagation_delay = sim::from_millis(11.5);  ///< half of 23 ms RTT
};

/// Delivery accounting.
struct ChannelStats {
    std::size_t sent = 0;
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t bits_sent = 0;
};

/// Unidirectional lossy FIFO link carrying messages of type Msg.
///
/// Serialization: a message of s bits occupies the link for s / bandwidth
/// seconds; messages queue behind one another (drop-tail routers in the
/// paper's motivation — we model the loss with the Gilbert chain rather
/// than an explicit queue, as the paper's own simulation does).  Delivery
/// happens propagation_delay after serialization completes.  Loss is
/// decided per packet by the Gilbert chain, in send order.
template <typename Msg>
class Channel {
public:
    using Receiver = std::function<void(Msg)>;

    /// Throws std::invalid_argument for non-positive bandwidth or negative
    /// propagation delay.
    Channel(sim::EventQueue& queue, LinkConfig link, GilbertParams loss,
            sim::Rng rng)
        : queue_(queue), link_(link), loss_(loss, std::move(rng)) {
        if (link_.bandwidth_bps <= 0.0) {
            throw std::invalid_argument("Channel: bandwidth must be positive");
        }
        if (link_.propagation_delay < 0) {
            throw std::invalid_argument("Channel: negative propagation delay");
        }
    }

    /// Registers the delivery callback (invoked at simulated arrival time).
    void set_receiver(Receiver r) { receiver_ = std::move(r); }

    /// Enqueues one message of `size_bits` onto the link.  Returns true if
    /// the message survived the loss process (it will be delivered after
    /// serialization + propagation).  The return value is the simulation
    /// harness's oracle for NACK-driven retransmission and FEC recovery;
    /// protocol endpoints must not base per-packet decisions on it ahead of
    /// the time a real NACK could have arrived.
    bool send(Msg msg, std::size_t size_bits) {
        const sim::SimTime tx_time = sim::from_seconds(
            static_cast<double>(size_bits) / link_.bandwidth_bps);
        const sim::SimTime depart = std::max(queue_.now(), link_free_);
        link_free_ = depart + tx_time;
        ++stats_.sent;
        stats_.bits_sent += size_bits;
        if (loss_.drop_next()) {
            ++stats_.dropped;
            return false;
        }
        const sim::SimTime arrival = link_free_ + link_.propagation_delay;
        // EventQueue callbacks are std::function (copyable); box the payload
        // so move-only message types work.
        auto boxed = std::make_shared<Msg>(std::move(msg));
        queue_.schedule_at(arrival, [this, boxed] {
            ++stats_.delivered;
            if (receiver_) receiver_(std::move(*boxed));
        });
        return true;
    }

    /// Earliest time a new message could start serializing.
    sim::SimTime next_free_time() const noexcept {
        return std::max(queue_.now(), link_free_);
    }

    /// Keeps the link idle until `t` (the sender deliberately waits, e.g.
    /// for a NACK before retransmitting).  No effect if t is in the past.
    void stall_until(sim::SimTime t) noexcept {
        link_free_ = std::max(link_free_, t);
    }

    /// Time the link needs to serialize `size_bits`.
    sim::SimTime serialization_time(std::size_t size_bits) const noexcept {
        return sim::from_seconds(static_cast<double>(size_bits) /
                                 link_.bandwidth_bps);
    }

    const ChannelStats& stats() const noexcept { return stats_; }
    const LinkConfig& link() const noexcept { return link_; }
    GilbertLoss& loss_model() noexcept { return loss_; }

private:
    sim::EventQueue& queue_;
    LinkConfig link_;
    GilbertLoss loss_;
    Receiver receiver_;
    sim::SimTime link_free_ = 0;
    ChannelStats stats_;
};

}  // namespace espread::net
