// Simulated unreliable datagram channel (paper §4.2 protocol setting).
//
// The paper's protocol runs over UDP: no retransmission below the
// application, packets serialized onto a fixed-bandwidth link with fixed
// propagation delay, and per-packet loss drawn from the Gilbert model.
// Channel<Msg> is unidirectional; a bidirectional session composes two
// channels (data and feedback) over one EventQueue.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "net/gilbert.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace espread::net {

/// Physical link parameters.
struct LinkConfig {
    double bandwidth_bps = 1.2e6;          ///< paper default 1.2 Mb/s
    sim::SimTime propagation_delay = sim::from_millis(11.5);  ///< half of 23 ms RTT
};

/// Delivery accounting.  Reconciliation invariant once the event queue has
/// drained: delivered + dropped + corrupt_rejected == sent + duplicated
/// (every send ends as exactly one delivery, loss, or corrupt rejection,
/// and every duplicate adds one extra delivery).  Side-band sends
/// (send_sideband) are included in every counter — `sent`, `bits_sent`,
/// the loss/corruption/duplication outcomes and `loss_runs` — so the
/// invariant covers them too; `sideband_sent`/`sideband_bits` break out
/// their share so repair-traffic budgets are auditable against it.
struct ChannelStats {
    std::size_t sent = 0;
    std::size_t delivered = 0;  ///< receiver callbacks fired (incl. duplicate copies)
    std::size_t dropped = 0;    ///< loss-model drops + scripted (forced) drops
    std::size_t bits_sent = 0;
    std::size_t duplicated = 0;        ///< extra copies created by fault injection
    std::size_t corrupt_rejected = 0;  ///< corrupted headers the codec rejected
    std::size_t reordered = 0;         ///< packets displaced past later sends
    std::size_t forced_dropped = 0;    ///< scripted drops (subset of `dropped`)
    std::size_t sideband_sent = 0;     ///< send_sideband calls (subset of `sent`)
    std::size_t sideband_bits = 0;     ///< their bits (subset of `bits_sent`)
    /// Lengths of maximal runs of consecutive dropped packets (send order).
    /// The max alone hides the burst distribution the Gilbert model is
    /// calibrated to; the histogram exposes it.  Sum over (length x count)
    /// equals `dropped`.
    sim::Histogram loss_runs;
};

/// Per-send fault directives, computed by a FaultChannel wrapper
/// (net/fault.hpp).  The default-constructed value is a no-op: the plain
/// send(msg, bits) path behaves exactly as if this struct did not exist.
/// Precedence: force_drop > loss model > corrupt_rejected > delivery.
struct SendFaults {
    bool force_drop = false;        ///< scripted loss (blackout / adversarial burst)
    bool corrupt_rejected = false;  ///< corruption detected by the codec: reject
    bool reordered = false;         ///< extra_delay displaces past later sends
    bool duplicate = false;         ///< deliver a second copy of the message
    sim::SimTime extra_delay = 0;   ///< jitter/reorder delay added to the arrival
    sim::SimTime duplicate_delay = 0;  ///< copy's delay past the original arrival
};

/// Unidirectional lossy FIFO link carrying messages of type Msg.
///
/// Serialization: a message of s bits occupies the link for s / bandwidth
/// seconds; messages queue behind one another (drop-tail routers in the
/// paper's motivation — we model the loss with the Gilbert chain rather
/// than an explicit queue, as the paper's own simulation does).  Delivery
/// happens propagation_delay after serialization completes.  Loss is
/// decided per packet by the Gilbert chain, in send order.
template <typename Msg>
class Channel {
public:
    using Receiver = std::function<void(Msg)>;

    /// Throws std::invalid_argument for non-positive bandwidth or negative
    /// propagation delay.
    Channel(sim::EventQueue& queue, LinkConfig link, GilbertParams loss,
            sim::Rng rng)
        : queue_(queue), link_(link), loss_(loss, std::move(rng)) {
        if (link_.bandwidth_bps <= 0.0) {
            throw std::invalid_argument("Channel: bandwidth must be positive");
        }
        if (link_.propagation_delay < 0) {
            throw std::invalid_argument("Channel: negative propagation delay");
        }
    }

    /// Registers the delivery callback (invoked at simulated arrival time).
    void set_receiver(Receiver r) { receiver_ = std::move(r); }

    /// Attaches a trace sink (non-owning; nullptr detaches).  Every send
    /// then emits a PacketSent or PacketLost event on `actor`'s track,
    /// stamped with the packet's link departure time.  With no sink the
    /// only cost is one null-pointer branch per send.
    void set_trace(obs::TraceSink* sink, obs::Actor actor) noexcept {
        trace_ = sink;
        trace_actor_ = actor;
    }

    /// Enqueues one message of `size_bits` onto the link.  Returns true if
    /// the message survived the loss process (it will be delivered after
    /// serialization + propagation).  The return value is the simulation
    /// harness's oracle for NACK-driven retransmission and FEC recovery;
    /// protocol endpoints must not base per-packet decisions on it ahead of
    /// the time a real NACK could have arrived.
    bool send(Msg msg, std::size_t size_bits) {
        return send(std::move(msg), size_bits, SendFaults{});
    }

    /// Sends one message under fault directives (see SendFaults).  The
    /// default directive reproduces the plain send() exactly — same loss
    /// draws, same arrival times, same trace events — so an inactive fault
    /// layer is observationally free.
    bool send(Msg msg, std::size_t size_bits, const SendFaults& faults) {
        return send_impl(std::move(msg), size_bits, faults,
                         /*occupy_link=*/true);
    }

    /// Sends one message on provisioned side-band headroom: identical loss
    /// draw, stats, trace, and delivery timing to send(), except the
    /// message never occupies the link, so in-band traffic is not queued
    /// behind it.  Models repair streams whose bandwidth is budgeted as
    /// overhead on top of the media rate (DESIGN.md §12); callers account
    /// the extra bits themselves.
    bool send_sideband(Msg msg, std::size_t size_bits) {
        return send_sideband(std::move(msg), size_bits, SendFaults{});
    }

    bool send_sideband(Msg msg, std::size_t size_bits,
                       const SendFaults& faults) {
        return send_impl(std::move(msg), size_bits, faults,
                         /*occupy_link=*/false);
    }

  private:
    bool send_impl(Msg msg, std::size_t size_bits, const SendFaults& faults,
                   bool occupy_link) {
        const sim::SimTime tx_time = sim::from_seconds(
            static_cast<double>(size_bits) / link_.bandwidth_bps);
        const sim::SimTime depart = std::max(queue_.now(), link_free_);
        if (occupy_link) {
            link_free_ = depart + tx_time;
        } else {
            ++stats_.sideband_sent;
            stats_.sideband_bits += size_bits;
        }
        ++stats_.sent;
        stats_.bits_sent += size_bits;
        // Scripted drops short-circuit the Gilbert draw: a blackout models
        // an outage on top of (not instead of) the stochastic loss process.
        if (faults.force_drop || loss_.drop_next()) {
            ++stats_.dropped;
            if (faults.force_drop) ++stats_.forced_dropped;
            ++loss_run_;
            trace(obs::EventType::kPacketLost, depart, size_bits);
            return false;
        }
        if (loss_run_ > 0) {
            stats_.loss_runs.add(static_cast<std::int64_t>(loss_run_));
            loss_run_ = 0;
        }
        if (faults.corrupt_rejected) {
            // The packet occupied the link but its header fails the codec
            // checksum at the receiver's door: never delivered.
            ++stats_.corrupt_rejected;
            trace(obs::EventType::kCorruptRejected, depart, size_bits);
            return false;
        }
        trace(obs::EventType::kPacketSent, depart, size_bits);
        if (faults.reordered) {
            ++stats_.reordered;
            trace(obs::EventType::kReordered, depart,
                  static_cast<std::size_t>(faults.extra_delay));
        }
        const sim::SimTime arrival =
            depart + tx_time + link_.propagation_delay + faults.extra_delay;
        // EventQueue callbacks are std::function (copyable); box the payload
        // so move-only message types work.
        auto boxed = std::make_shared<Msg>(std::move(msg));
        if (faults.duplicate) {
            // Duplication happens in the network, not on the link: the copy
            // costs no serialization time.  Move-only payloads cannot be
            // duplicated; the directive is ignored for them.
            if constexpr (std::is_copy_constructible_v<Msg>) {
                ++stats_.duplicated;
                auto copy = std::make_shared<Msg>(*boxed);
                queue_.schedule_at(arrival + faults.duplicate_delay,
                                   [this, copy] {
                                       ++stats_.delivered;
                                       if (receiver_) receiver_(std::move(*copy));
                                   });
            }
        }
        queue_.schedule_at(arrival, [this, boxed] {
            ++stats_.delivered;
            if (receiver_) receiver_(std::move(*boxed));
        });
        return true;
    }

  public:
    /// Earliest time a new message could start serializing.
    sim::SimTime next_free_time() const noexcept {
        return std::max(queue_.now(), link_free_);
    }

    /// Keeps the link idle until `t` (the sender deliberately waits, e.g.
    /// for a NACK before retransmitting).  No effect if t is in the past.
    void stall_until(sim::SimTime t) noexcept {
        link_free_ = std::max(link_free_, t);
    }

    /// Time the link needs to serialize `size_bits`.
    sim::SimTime serialization_time(std::size_t size_bits) const noexcept {
        return sim::from_seconds(static_cast<double>(size_bits) /
                                 link_.bandwidth_bps);
    }

    /// Snapshot of the delivery counters.  A loss run still open at call
    /// time (the most recent packet was dropped) is counted as complete, so
    /// loss_runs always sums to `dropped`.
    ChannelStats stats() const {
        ChannelStats s = stats_;
        if (loss_run_ > 0) s.loss_runs.add(static_cast<std::int64_t>(loss_run_));
        return s;
    }
    /// Packets handed to send() so far (cheap; stats() copies a histogram).
    std::size_t packets_sent() const noexcept { return stats_.sent; }
    const LinkConfig& link() const noexcept { return link_; }
    GilbertLoss& loss_model() noexcept { return loss_; }

private:
    void trace(obs::EventType type, sim::SimTime depart, std::size_t arg) {
        if (!trace_) return;
        obs::TraceEvent e;
        e.time = depart;
        e.type = type;
        e.actor = trace_actor_;
        e.seq = stats_.sent - 1;
        e.arg = static_cast<std::int64_t>(arg);
        trace_->record(e);
    }

    sim::EventQueue& queue_;
    LinkConfig link_;
    GilbertLoss loss_;
    Receiver receiver_;
    sim::SimTime link_free_ = 0;
    ChannelStats stats_;
    std::size_t loss_run_ = 0;  ///< consecutive drops ending at the last send
    obs::TraceSink* trace_ = nullptr;
    obs::Actor trace_actor_ = obs::Actor::kDataChannel;
};

}  // namespace espread::net
