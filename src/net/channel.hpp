// Simulated unreliable datagram channel (paper §4.2 protocol setting).
//
// The paper's protocol runs over UDP: no retransmission below the
// application, packets serialized onto a fixed-bandwidth link with fixed
// propagation delay, and per-packet loss drawn from the Gilbert model.
// Channel<Msg> is unidirectional; a bidirectional session composes two
// channels (data and feedback) over one EventQueue.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "net/gilbert.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace espread::net {

/// Physical link parameters.
struct LinkConfig {
    double bandwidth_bps = 1.2e6;          ///< paper default 1.2 Mb/s
    sim::SimTime propagation_delay = sim::from_millis(11.5);  ///< half of 23 ms RTT
};

/// Delivery accounting.
struct ChannelStats {
    std::size_t sent = 0;
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t bits_sent = 0;
    /// Lengths of maximal runs of consecutive dropped packets (send order).
    /// The max alone hides the burst distribution the Gilbert model is
    /// calibrated to; the histogram exposes it.  Sum over (length x count)
    /// equals `dropped`.
    sim::Histogram loss_runs;
};

/// Unidirectional lossy FIFO link carrying messages of type Msg.
///
/// Serialization: a message of s bits occupies the link for s / bandwidth
/// seconds; messages queue behind one another (drop-tail routers in the
/// paper's motivation — we model the loss with the Gilbert chain rather
/// than an explicit queue, as the paper's own simulation does).  Delivery
/// happens propagation_delay after serialization completes.  Loss is
/// decided per packet by the Gilbert chain, in send order.
template <typename Msg>
class Channel {
public:
    using Receiver = std::function<void(Msg)>;

    /// Throws std::invalid_argument for non-positive bandwidth or negative
    /// propagation delay.
    Channel(sim::EventQueue& queue, LinkConfig link, GilbertParams loss,
            sim::Rng rng)
        : queue_(queue), link_(link), loss_(loss, std::move(rng)) {
        if (link_.bandwidth_bps <= 0.0) {
            throw std::invalid_argument("Channel: bandwidth must be positive");
        }
        if (link_.propagation_delay < 0) {
            throw std::invalid_argument("Channel: negative propagation delay");
        }
    }

    /// Registers the delivery callback (invoked at simulated arrival time).
    void set_receiver(Receiver r) { receiver_ = std::move(r); }

    /// Attaches a trace sink (non-owning; nullptr detaches).  Every send
    /// then emits a PacketSent or PacketLost event on `actor`'s track,
    /// stamped with the packet's link departure time.  With no sink the
    /// only cost is one null-pointer branch per send.
    void set_trace(obs::TraceSink* sink, obs::Actor actor) noexcept {
        trace_ = sink;
        trace_actor_ = actor;
    }

    /// Enqueues one message of `size_bits` onto the link.  Returns true if
    /// the message survived the loss process (it will be delivered after
    /// serialization + propagation).  The return value is the simulation
    /// harness's oracle for NACK-driven retransmission and FEC recovery;
    /// protocol endpoints must not base per-packet decisions on it ahead of
    /// the time a real NACK could have arrived.
    bool send(Msg msg, std::size_t size_bits) {
        const sim::SimTime tx_time = sim::from_seconds(
            static_cast<double>(size_bits) / link_.bandwidth_bps);
        const sim::SimTime depart = std::max(queue_.now(), link_free_);
        link_free_ = depart + tx_time;
        ++stats_.sent;
        stats_.bits_sent += size_bits;
        if (loss_.drop_next()) {
            ++stats_.dropped;
            ++loss_run_;
            if (trace_) {
                obs::TraceEvent e;
                e.time = depart;
                e.type = obs::EventType::kPacketLost;
                e.actor = trace_actor_;
                e.seq = stats_.sent - 1;
                e.arg = static_cast<std::int64_t>(size_bits);
                trace_->record(e);
            }
            return false;
        }
        if (loss_run_ > 0) {
            stats_.loss_runs.add(static_cast<std::int64_t>(loss_run_));
            loss_run_ = 0;
        }
        if (trace_) {
            obs::TraceEvent e;
            e.time = depart;
            e.type = obs::EventType::kPacketSent;
            e.actor = trace_actor_;
            e.seq = stats_.sent - 1;
            e.arg = static_cast<std::int64_t>(size_bits);
            trace_->record(e);
        }
        const sim::SimTime arrival = link_free_ + link_.propagation_delay;
        // EventQueue callbacks are std::function (copyable); box the payload
        // so move-only message types work.
        auto boxed = std::make_shared<Msg>(std::move(msg));
        queue_.schedule_at(arrival, [this, boxed] {
            ++stats_.delivered;
            if (receiver_) receiver_(std::move(*boxed));
        });
        return true;
    }

    /// Earliest time a new message could start serializing.
    sim::SimTime next_free_time() const noexcept {
        return std::max(queue_.now(), link_free_);
    }

    /// Keeps the link idle until `t` (the sender deliberately waits, e.g.
    /// for a NACK before retransmitting).  No effect if t is in the past.
    void stall_until(sim::SimTime t) noexcept {
        link_free_ = std::max(link_free_, t);
    }

    /// Time the link needs to serialize `size_bits`.
    sim::SimTime serialization_time(std::size_t size_bits) const noexcept {
        return sim::from_seconds(static_cast<double>(size_bits) /
                                 link_.bandwidth_bps);
    }

    /// Snapshot of the delivery counters.  A loss run still open at call
    /// time (the most recent packet was dropped) is counted as complete, so
    /// loss_runs always sums to `dropped`.
    ChannelStats stats() const {
        ChannelStats s = stats_;
        if (loss_run_ > 0) s.loss_runs.add(static_cast<std::int64_t>(loss_run_));
        return s;
    }
    const LinkConfig& link() const noexcept { return link_; }
    GilbertLoss& loss_model() noexcept { return loss_; }

private:
    sim::EventQueue& queue_;
    LinkConfig link_;
    GilbertLoss loss_;
    Receiver receiver_;
    sim::SimTime link_free_ = 0;
    ChannelStats stats_;
    std::size_t loss_run_ = 0;  ///< consecutive drops ending at the last send
    obs::TraceSink* trace_ = nullptr;
    obs::Actor trace_actor_ = obs::Actor::kDataChannel;
};

}  // namespace espread::net
