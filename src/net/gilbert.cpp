#include "net/gilbert.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace espread::net {

GilbertLoss::GilbertLoss(GilbertParams params, sim::Rng rng)
    : params_(params), rng_(std::move(rng)) {
    const auto valid = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!valid(params_.p_good) || !valid(params_.p_bad) ||
        !valid(params_.loss_good) || !valid(params_.loss_bad)) {
        throw std::invalid_argument("GilbertLoss: probabilities must be in [0, 1]");
    }
}

std::uint64_t GilbertLoss::sample_dwell() noexcept {
    const double stay = state_ == State::kGood ? params_.p_good : params_.p_bad;
    if (stay <= 0.0) return 1;  // leaves after every packet
    if (stay >= 1.0) {
        return std::numeric_limits<std::uint64_t>::max();  // absorbed
    }
    // Geometric sojourn by inversion: dwell = 1 + floor(log(1-u)/log(stay))
    // with u uniform in [0, 1) gives P(dwell = k) = stay^(k-1) * (1-stay),
    // exactly the step-by-step chain's distribution, for one log instead of
    // one Bernoulli draw per packet.
    const double extra = std::floor(std::log1p(-rng_.uniform()) / std::log(stay));
    constexpr double kCap = 9.0e18;  // stays below uint64 range
    if (!(extra < kCap)) return std::numeric_limits<std::uint64_t>::max();
    return 1 + static_cast<std::uint64_t>(extra);
}

bool GilbertLoss::drop_next() noexcept {
    // The packet experiences the current state, then the chain transitions
    // (here: the sojourn counter expires).  The degenerate emission
    // probabilities (the classic Gilbert defaults) avoid a per-packet RNG
    // draw so classic-model streams are unchanged by the Gilbert–Elliott
    // extension.
    if (remaining_ == 0) remaining_ = sample_dwell();
    const double h = state_ == State::kBad ? params_.loss_bad : params_.loss_good;
    bool lost;
    if (h <= 0.0) {
        lost = false;
    } else if (h >= 1.0) {
        lost = true;
    } else {
        lost = rng_.bernoulli(h);
    }
    if (--remaining_ == 0) {
        state_ = state_ == State::kGood ? State::kBad : State::kGood;
    }
    return lost;
}

GilbertLoss::Run GilbertLoss::next_run(std::uint64_t max_packets) noexcept {
    if (remaining_ == 0) remaining_ = sample_dwell();
    const double h = state_ == State::kBad ? params_.loss_bad : params_.loss_good;
    if (h > 0.0 && h < 1.0) {
        // Non-degenerate emission: each packet needs its own Bernoulli
        // draw, so the batch degenerates to drop_next() one packet at a
        // time (same draws, same stream).
        const bool lost = rng_.bernoulli(h);
        if (--remaining_ == 0) {
            state_ = state_ == State::kGood ? State::kBad : State::kGood;
        }
        return {1, lost};
    }
    const std::uint64_t len = remaining_ < max_packets ? remaining_ : max_packets;
    remaining_ -= len;
    if (remaining_ == 0) {
        state_ = state_ == State::kGood ? State::kBad : State::kGood;
    }
    return {len, h >= 1.0};
}

double GilbertLoss::stationary_loss(const GilbertParams& p) noexcept {
    const double to_bad = 1.0 - p.p_good;
    const double to_good = 1.0 - p.p_bad;
    if (to_bad + to_good == 0.0) return p.loss_good;  // stays GOOD forever
    const double pi_bad = to_bad / (to_bad + to_good);
    return pi_bad * p.loss_bad + (1.0 - pi_bad) * p.loss_good;
}

double GilbertLoss::mean_burst_length(const GilbertParams& p) noexcept {
    if (p.p_bad >= 1.0) return 0.0;  // never leaves BAD once entered
    return 1.0 / (1.0 - p.p_bad);
}

}  // namespace espread::net
