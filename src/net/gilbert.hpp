// Two-state Markov (Gilbert) packet-loss model (paper §5.1, Fig. 7).
//
// The network alternates between a GOOD state (packets delivered) and a BAD
// state (packets dropped).  From GOOD it stays with probability p_good;
// from BAD it stays with probability p_bad.  Because p_bad is large in the
// paper's experiments (0.6 / 0.7), losses arrive in bursts — exactly the
// error pattern error spreading targets.  The chain starts in GOOD and
// steps once per packet.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace espread::net {

/// Stay-probabilities of the two states, plus per-state drop probabilities.
///
/// The defaults (loss_good = 0, loss_bad = 1) give the paper's classic
/// Gilbert model: GOOD always delivers, BAD always drops.  Setting them to
/// intermediate values yields the Gilbert–Elliott generalization, where
/// each state only biases the drop probability — useful for modelling
/// residual loss on "good" paths and partial delivery inside congestion
/// episodes.
struct GilbertParams {
    double p_good = 0.92;   ///< P(stay GOOD | GOOD); paper uses 0.92
    double p_bad = 0.6;     ///< P(stay BAD | BAD); paper varies 0.6 / 0.7
    double loss_good = 0.0; ///< P(drop | GOOD)
    double loss_bad = 1.0;  ///< P(drop | BAD)
};

/// Per-packet loss process.
///
/// Implementation note: rather than one Bernoulli draw per packet to decide
/// "stay or leave", the chain samples the whole geometric sojourn (dwell
/// time) of each state by inversion when the state is entered, then merely
/// decrements a counter per packet.  The dwell distribution is identical to
/// the step-by-step chain — P(dwell = k) = stay^(k-1) * (1 - stay) — so all
/// statistics are unchanged, but the per-packet hot path costs one RNG draw
/// per *burst/gap* instead of per packet (for the classic emission
/// probabilities, zero per-packet draws).  Streams for a given seed differ
/// from the pre-batching implementation; determinism per (params, seed) is
/// preserved.
class GilbertLoss {
public:
    enum class State { kGood, kBad };

    /// Throws std::invalid_argument unless both probabilities are in [0, 1].
    GilbertLoss(GilbertParams params, sim::Rng rng);

    /// Steps the chain by one packet; returns true if that packet is lost
    /// (i.e. the chain was in BAD while the packet crossed the link).
    bool drop_next() noexcept;

    /// A maximal span of consecutive packets with one shared outcome.
    struct Run {
        std::uint64_t length = 0;  ///< packets covered (>= 1)
        bool lost = false;         ///< outcome of every packet in the span
    };

    /// Batched sampling for the multi-session engine: advances the chain by
    /// up to `max_packets` (>= 1) packets that all share one outcome and
    /// returns the span.  For the classic emission probabilities (the
    /// per-state drop probability is 0 or 1) this consumes a whole sojourn
    /// remainder per call; a non-degenerate emission falls back to
    /// one-packet runs so the per-packet Bernoulli draws are preserved.
    /// Equivalence contract: consuming runs yields exactly the drop_next()
    /// stream of the same seeded chain (pinned by test_gilbert).
    Run next_run(std::uint64_t max_packets) noexcept;

    State state() const noexcept { return state_; }
    const GilbertParams& params() const noexcept { return params_; }

    /// Long-run fraction of packets lost:
    /// pi_bad * loss_bad + pi_good * loss_good, where
    /// pi_bad = (1 - p_good) / ((1 - p_good) + (1 - p_bad)).
    static double stationary_loss(const GilbertParams& p) noexcept;

    /// Mean length of a loss burst for the CLASSIC emissions
    /// (loss_good = 0, loss_bad = 1): 1 / (1 - p_bad).
    static double mean_burst_length(const GilbertParams& p) noexcept;

private:
    /// Samples the current state's remaining dwell time (>= 1 packets).
    std::uint64_t sample_dwell() noexcept;

    GilbertParams params_;
    sim::Rng rng_;
    State state_ = State::kGood;
    std::uint64_t remaining_ = 0;  ///< packets left in the current sojourn
};

}  // namespace espread::net
