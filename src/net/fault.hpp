// Deterministic fault-injection layer over Channel<Msg>.
//
// The paper's protocol runs over raw UDP (§4.2), so in-order Gilbert drops
// are only the start of the threat model: real datagram paths also reorder,
// duplicate, corrupt and jitter packets, and outages kill whole spans of
// traffic.  FaultChannel wraps Channel<Msg> and injects exactly those
// pathologies, driven by its own seeded sim::Rng so an impaired run is a
// pure function of (config, seed) — the same determinism contract the
// Monte-Carlo runner guarantees across thread counts.
//
// Zero-cost-off contract: with an inactive ImpairmentConfig (all rates
// zero, no fault plan) FaultChannel::send is a direct delegate — no RNG
// draws, no timing changes, no extra trace events — so every unimpaired
// simulation is byte-identical to one run on a bare Channel.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "sim/rng.hpp"

namespace espread::net {

/// Scripted total outage: every packet whose link departure falls in
/// [from, to) is force-dropped.  "Kill the ACK path for windows 3–5" is a
/// Blackout on the feedback channel spanning those windows' ACK departures
/// (see proto::SessionConfig::blackout_feedback_windows).
struct Blackout {
    sim::SimTime from = 0;
    sim::SimTime to = 0;  ///< half-open interval end
};

/// Adversarial worst-case burst: force-drop `length` consecutive packets
/// starting at 0-based send index `start`.  Complements the Gilbert
/// model's random bursts with exact placement, e.g. the core/burst
/// worst-case positions for a given permutation.
struct ForcedBurst {
    std::size_t start = 0;
    std::size_t length = 0;
};

/// What to inject and how hard.  Default-constructed = inactive.
struct ImpairmentConfig {
    /// Probability a packet is displaced past later sends.  The displaced
    /// packet's arrival is delayed by d serialization slots of its own
    /// size, d uniform in [1, reorder_max_displacement]; with back-to-back
    /// equal-size packets the positional displacement is bounded by
    /// reorder_max_displacement in both directions.
    double reorder_rate = 0.0;
    std::size_t reorder_max_displacement = 4;

    /// Probability a delivered packet is duplicated; the copy arrives
    /// duplicate_delay after the original (never before it).
    double duplicate_rate = 0.0;
    sim::SimTime duplicate_delay = sim::from_millis(1.0);

    /// Probability a packet's header is corrupted: up to
    /// corrupt_max_bit_flips random bit flips applied to the record's wire
    /// encoding.  A flip the codec checksum catches rejects the packet
    /// (ChannelStats::corrupt_rejected); an undetected one delivers the
    /// corrupted record.  Channels without a corrupter reject outright.
    double corrupt_rate = 0.0;
    std::size_t corrupt_max_bit_flips = 3;

    /// Probability of extra delivery delay, uniform in [0, jitter_max].
    double jitter_rate = 0.0;
    sim::SimTime jitter_max = sim::from_millis(5.0);

    std::vector<Blackout> blackouts;
    std::vector<ForcedBurst> bursts;

    /// True if any impairment can fire.  Inactive configs make FaultChannel
    /// a pass-through (the zero-cost-off contract).
    bool active() const noexcept;

    /// Throws std::invalid_argument on out-of-range rates or malformed
    /// plan entries.
    void validate() const;
};

/// Channel<Msg> plus deterministic impairments.  Exposes the full Channel
/// surface so protocol endpoints are written once against either.
template <typename Msg>
class FaultChannel {
public:
    using Receiver = typename Channel<Msg>::Receiver;
    /// Applies a corruption to one message (e.g. encode -> flip bits ->
    /// decode through the wire codec).  Returns the corrupted message, or
    /// nullopt when the corruption is detected (checksum) and the packet
    /// must be rejected.
    using Corrupter = std::function<std::optional<Msg>(const Msg&, sim::Rng&)>;

    FaultChannel(sim::EventQueue& queue, LinkConfig link, GilbertParams loss,
                 sim::Rng link_rng)
        : inner_(queue, link, loss, std::move(link_rng)) {}

    /// Installs the impairment plan.  `fault_rng` drives every impairment
    /// decision (independent of the link's loss process so enabling faults
    /// does not shift the Gilbert stream).  Validates `cfg`; an inactive
    /// config keeps the channel in pass-through mode.
    void set_impairments(ImpairmentConfig cfg, sim::Rng fault_rng,
                         Corrupter corrupter = nullptr) {
        cfg.validate();
        cfg_ = std::move(cfg);
        rng_ = fault_rng;
        corrupter_ = std::move(corrupter);
        active_ = cfg_.active();
    }

    bool send(Msg msg, std::size_t size_bits) {
        if (!active_) return inner_.send(std::move(msg), size_bits);
        const SendFaults f = draw_faults(msg, size_bits);
        return inner_.send(std::move(msg), size_bits, f);
    }

    /// Side-band variant of send(): same impairment draws, but the inner
    /// channel is told not to occupy the link (see Channel::send_sideband).
    bool send_sideband(Msg msg, std::size_t size_bits) {
        if (!active_) return inner_.send_sideband(std::move(msg), size_bits);
        const SendFaults f = draw_faults(msg, size_bits);
        return inner_.send_sideband(std::move(msg), size_bits, f);
    }

  private:
    /// Rolls the impairment dice for one outgoing message, possibly
    /// mutating the payload in place (corruption with a corrupter hook).
    SendFaults draw_faults(Msg& msg, std::size_t size_bits) {
        SendFaults f;
        f.force_drop = scripted_drop(inner_.next_free_time(),
                                     inner_.packets_sent());
        // Draw order is fixed (corrupt, duplicate, reorder, jitter) and
        // each draw is gated on its own rate, so a mix's realization is a
        // deterministic function of (config, seed).
        if (!f.force_drop) {
            if (cfg_.corrupt_rate > 0.0 && rng_.bernoulli(cfg_.corrupt_rate)) {
                if (corrupter_) {
                    std::optional<Msg> mutated = corrupter_(msg, rng_);
                    if (mutated.has_value()) {
                        msg = std::move(*mutated);
                    } else {
                        f.corrupt_rejected = true;
                    }
                } else {
                    f.corrupt_rejected = true;
                }
            }
            if (!f.corrupt_rejected) {
                if (cfg_.duplicate_rate > 0.0 &&
                    rng_.bernoulli(cfg_.duplicate_rate)) {
                    f.duplicate = true;
                    f.duplicate_delay = cfg_.duplicate_delay;
                }
                if (cfg_.reorder_rate > 0.0 &&
                    rng_.bernoulli(cfg_.reorder_rate)) {
                    const std::uint64_t d = rng_.uniform_int(
                        1, static_cast<std::uint64_t>(
                               cfg_.reorder_max_displacement));
                    f.reordered = true;
                    f.extra_delay += static_cast<sim::SimTime>(d) *
                                     inner_.serialization_time(size_bits);
                }
                if (cfg_.jitter_rate > 0.0 && cfg_.jitter_max > 0 &&
                    rng_.bernoulli(cfg_.jitter_rate)) {
                    f.extra_delay += static_cast<sim::SimTime>(
                        rng_.uniform_int(0, static_cast<std::uint64_t>(
                                                cfg_.jitter_max)));
                }
            }
        }
        return f;
    }

  public:
    // ---- Channel surface (delegated) ----------------------------------
    void set_receiver(Receiver r) { inner_.set_receiver(std::move(r)); }
    void set_trace(obs::TraceSink* sink, obs::Actor actor) noexcept {
        inner_.set_trace(sink, actor);
    }
    sim::SimTime next_free_time() const noexcept {
        return inner_.next_free_time();
    }
    void stall_until(sim::SimTime t) noexcept { inner_.stall_until(t); }
    sim::SimTime serialization_time(std::size_t size_bits) const noexcept {
        return inner_.serialization_time(size_bits);
    }
    ChannelStats stats() const { return inner_.stats(); }
    const LinkConfig& link() const noexcept { return inner_.link(); }
    GilbertLoss& loss_model() noexcept { return inner_.loss_model(); }

    bool impaired() const noexcept { return active_; }
    const ImpairmentConfig& impairments() const noexcept { return cfg_; }

private:
    bool scripted_drop(sim::SimTime depart, std::size_t index) const noexcept {
        for (const Blackout& b : cfg_.blackouts) {
            if (depart >= b.from && depart < b.to) return true;
        }
        for (const ForcedBurst& b : cfg_.bursts) {
            if (index >= b.start && index - b.start < b.length) return true;
        }
        return false;
    }

    Channel<Msg> inner_;
    ImpairmentConfig cfg_;
    sim::Rng rng_{0};
    Corrupter corrupter_;
    bool active_ = false;
};

}  // namespace espread::net
