// Scalar reference for the engine's window loop.
//
// One session, simulated the straightforward way: a real BurstEstimator,
// a fresh calculate_permutation per window, LossMask vectors, and one
// GilbertLoss::drop_next() per packet.  test_engine pins the batched SoA
// hot path (bit-range marking, scatter_set_bits, max_set_run) against
// this implementation window by window, so any divergence in the
// engine's word-level tricks fails loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/config.hpp"

namespace espread::engine {

/// Per-window trace of one reference session.
struct ReferenceTrace {
    std::vector<std::size_t> window_clf;    ///< playback-order CLF per window
    std::vector<std::size_t> window_bound;  ///< Eq. 1 bound used per window
    /// Governor-lite state each window ran under (kGovNormal throughout
    /// when cfg.governor is off) — pins the pool's supervised loop.
    std::vector<std::uint8_t> window_state;
    std::uint64_t unit_losses = 0;
    std::uint64_t acks_delivered = 0;
    std::uint64_t acks_lost = 0;
    std::uint64_t governor_transitions = 0;
    /// FEC-lite arm mirror (zero when cfg.fec is off).
    std::uint64_t fec_repair_packets = 0;
    std::uint64_t fec_windows_recovered = 0;
};

/// Runs `windows` buffer windows of the session identified by
/// `session_id` under `cfg` (churn ignored: the caller decides how many
/// windows a generation lives).  Uses the same RNG stream layout as
/// SessionPool::spawn — root = derive_seed(cfg.seed, session_id), data
/// chain = split(kEngineLaneDataChain), feedback chain =
/// split(kEngineLaneFeedbackChain) — so the trace predicts the pool slot
/// exactly.
ReferenceTrace run_reference_session(const EngineConfig& cfg,
                                     std::uint64_t session_id,
                                     std::size_t windows);

}  // namespace espread::engine
