// Configuration of the data-oriented multi-session engine (src/engine).
//
// The engine runs the paper's §4.2 adaptive window loop — k-CPO
// permutation, Gilbert packet loss, unspread, CLF measurement, Eq. 1
// feedback with the Fig. 6 ACK delay — for many concurrent sessions over
// structure-of-arrays state, instead of one discrete-event Session object
// per stream.  One EngineConfig fully determines a run: all randomness is
// derived from (seed, session id) via sim::derive_seed, so results are
// byte-identical across shard counts (pinned by test_engine).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "net/gilbert.hpp"

namespace espread::engine {

/// Seeded session arrival/departure model.  Lifetimes are
/// min + Geometric(mean excess) windows; after a departure the slot stays
/// idle for a Geometric(mean gap) number of windows before the next
/// session spawns (gap 0 = immediate respawn, keeping the active
/// population constant while still churning session identities).  Both
/// draws come from the departing/arriving session's own RNG stream, so
/// churn is independent of sharding.
struct ChurnConfig {
    bool enabled = false;
    std::size_t min_lifetime_windows = 16;   ///< floor on session length
    double mean_lifetime_windows = 64.0;     ///< mean session length (>= min)
    double mean_arrival_gap_windows = 0.0;   ///< mean idle windows per slot
};

/// Fleet telemetry plane (src/obs/telemetry).  When enabled the engine
/// gives every shard a TelemetrySlab and folds all slabs into an
/// immutable FleetSnapshot every `epoch_steps` engine steps.  Disabled
/// (the default) the hot path pays exactly one null-check per
/// instrumentation site and the step loop stays allocation-free (pinned
/// by test_alloc).
struct TelemetryConfig {
    bool enabled = false;
    std::size_t epoch_steps = 64;  ///< engine steps per snapshot epoch
};

/// Window-scoped FEC-lite arm — the SoA pool's idealization of the
/// sliding-window RLC scheme (src/fec, DESIGN.md §12), reduced to what
/// fits the branch-light hot path.  After a window's n*f source packets
/// the sender appends floor(n*f*overhead_num/overhead_den) repair packets
/// through the same Gilbert chain (always sent: constant bandwidth,
/// shard-independent chain advance); the window's lost LDUs are repaired
/// before unspreading iff the surviving repairs cover the lost source
/// packets (the MDS all-or-nothing limit of the RLC decoder's rank
/// condition).  The Eq. 1 feedback still reports the *channel* burst, so
/// adaptation keeps tracking the network, not the post-repair stream.
/// Disabled (the default) the engine's numbers are byte-identical to a
/// build without this arm.
struct FecLiteConfig {
    bool enabled = false;
    std::size_t overhead_num = 1;   ///< repair packets per overhead_den sources
    std::size_t overhead_den = 10;

    /// NACK-lite: the pool's idealization of the receiver-authoritative
    /// recovery plane (DESIGN.md §13).  Instead of sending the window's
    /// repair accrual unconditionally, the slot *banks* it (capped at
    /// nack_credit_cap; overflow expires) and releases min(bank, lost
    /// packets) repairs only when a lossy window's NACK — piggybacked on
    /// the window's feedback packet, so the feedback chain still advances
    /// exactly once per window — survives the feedback channel.  After
    /// nack_watchdog_windows consecutive lost feedback packets the slot
    /// reverts to the fixed proactive schedule until feedback returns
    /// (graceful degradation to the plain FEC-lite arm).  Off (the
    /// default), the arm is byte-identical to plain FEC-lite.
    bool nack = false;
    std::size_t nack_credit_cap = 8;
    std::size_t nack_watchdog_windows = 2;
};

/// Per-slot "governor-lite" supervision of the Eq. 1 feedback loop — the
/// SoA pool's counterpart of proto::AdaptationGovernor, reduced to what
/// fits a branch-light hot path: a missed-feedback watchdog driving
/// Normal -> Degraded -> Fallback -> Recovering -> Normal.  Degraded
/// decays the estimate toward the no-feedback prior (n/2); Fallback pins
/// it there; Recovering slew-limits the published bound by `max_step`
/// per window until `recovery_windows` consecutive feedback windows
/// restore Normal.  No hysteresis, outlier guard or backoff (those live
/// in the protocol governor).  Disabled (the default) the engine's
/// numbers are byte-identical to an unsupervised run.
struct GovernorLiteConfig {
    bool enabled = false;
    std::uint32_t miss_budget = 3;      ///< misses before Normal -> Degraded
    double outage_decay = 0.5;          ///< estimate fraction kept per Degraded miss
    std::uint32_t fallback_budget = 3;  ///< Degraded misses before Fallback
    std::size_t max_step = 4;           ///< Recovering bound slew per window
    std::uint32_t recovery_windows = 4; ///< feedback windows to re-enter Normal
};

/// Full parameterization of a ShardedEngine run.  Defaults reproduce the
/// Fig. 8 setup: 24-LDU windows, two packets per LDU, Gilbert(0.92, 0.6)
/// on both the data and feedback paths, alpha = 1/2, feedback applied two
/// windows after the ACKed window (Fig. 6).
struct EngineConfig {
    std::size_t sessions = 1;   ///< concurrent session slots (pool capacity)
    std::size_t shards = 1;     ///< worker shards; 0 = hardware threads

    std::size_t window_ldus = 24;     ///< n: LDUs per buffer window
    std::size_t packets_per_ldu = 2;  ///< f: network packets per LDU
    bool spread = true;               ///< false = in-order comparison arm

    double alpha = 0.5;                       ///< Eq. 1 EWMA weight
    std::size_t feedback_delay_windows = 2;   ///< Fig. 6 ACK-to-effect lag

    net::GilbertParams data_loss{};      ///< server -> client packet channel
    net::GilbertParams feedback_loss{};  ///< client -> server ACK channel

    ChurnConfig churn{};
    TelemetryConfig telemetry{};
    FecLiteConfig fec{};
    GovernorLiteConfig governor{};

    /// When set, summarize() also fills an obs::MetricsRegistry with
    /// engine/* counters and histograms (integer-valued, so the rendered
    /// registry is byte-identical across shard counts).
    bool collect_metrics = false;

    std::uint64_t seed = 1;

    /// Throws std::invalid_argument on out-of-domain values.  Channel
    /// probabilities are validated here (not only in GilbertLoss) so the
    /// engine's noexcept hot path can respawn sessions without a throw
    /// path.
    void validate() const {
        if (sessions == 0) {
            throw std::invalid_argument("EngineConfig: sessions must be >= 1");
        }
        if (window_ldus == 0) {
            throw std::invalid_argument("EngineConfig: window_ldus must be >= 1");
        }
        if (packets_per_ldu == 0) {
            throw std::invalid_argument("EngineConfig: packets_per_ldu must be >= 1");
        }
        if (!(alpha >= 0.0 && alpha <= 1.0)) {
            throw std::invalid_argument("EngineConfig: alpha must be in [0, 1]");
        }
        if (feedback_delay_windows == 0) {
            throw std::invalid_argument(
                "EngineConfig: feedback_delay_windows must be >= 1");
        }
        if (churn.enabled && churn.min_lifetime_windows == 0) {
            throw std::invalid_argument(
                "EngineConfig: churn.min_lifetime_windows must be >= 1");
        }
        if (fec.enabled && (fec.overhead_num == 0 || fec.overhead_den == 0)) {
            throw std::invalid_argument(
                "EngineConfig: fec overhead ratio terms must be >= 1");
        }
        if (fec.nack) {
            if (!fec.enabled) {
                throw std::invalid_argument(
                    "EngineConfig: fec.nack requires fec.enabled");
            }
            if (fec.nack_credit_cap == 0 || fec.nack_watchdog_windows == 0) {
                throw std::invalid_argument(
                    "EngineConfig: fec.nack needs nack_credit_cap >= 1 and "
                    "nack_watchdog_windows >= 1");
            }
        }
        if (telemetry.enabled && telemetry.epoch_steps == 0) {
            throw std::invalid_argument(
                "EngineConfig: telemetry.epoch_steps must be >= 1");
        }
        if (governor.enabled) {
            if (governor.miss_budget == 0 || governor.fallback_budget == 0 ||
                governor.recovery_windows == 0) {
                throw std::invalid_argument(
                    "EngineConfig: governor budgets must be >= 1");
            }
            if (!(governor.outage_decay >= 0.0 && governor.outage_decay <= 1.0)) {
                throw std::invalid_argument(
                    "EngineConfig: governor.outage_decay must be in [0, 1]");
            }
            if (governor.max_step == 0) {
                throw std::invalid_argument(
                    "EngineConfig: governor.max_step must be >= 1");
            }
        }
        const auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
        for (const net::GilbertParams& g : {data_loss, feedback_loss}) {
            if (!prob(g.p_good) || !prob(g.p_bad) || !prob(g.loss_good) ||
                !prob(g.loss_bad)) {
                throw std::invalid_argument(
                    "EngineConfig: channel probabilities must be in [0, 1]");
            }
        }
    }
};

}  // namespace espread::engine
