#include "engine/pool.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "core/cpo.hpp"
#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "sim/contracts.hpp"
#include "sim/rng.hpp"

namespace espread::engine {

namespace {

constexpr std::uint32_t kNoObs = std::numeric_limits<std::uint32_t>::max();

/// Sets bits [lo, hi] (inclusive) across packed words.
void set_bits(std::uint64_t* w, std::size_t lo, std::size_t hi) noexcept {
    const std::size_t wlo = lo >> 6;
    const std::size_t whi = hi >> 6;
    const std::uint64_t mlo = ~std::uint64_t{0} << (lo & 63);
    const std::uint64_t mhi = (hi & 63) == 63
                                  ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << ((hi & 63) + 1)) - 1;
    if (wlo == whi) {
        w[wlo] |= mlo & mhi;
        return;
    }
    w[wlo] |= mlo;
    for (std::size_t i = wlo + 1; i < whi; ++i) w[i] = ~std::uint64_t{0};
    w[whi] |= mhi;
}

std::uint32_t clamp_u32(std::uint64_t v) noexcept {
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint32_t>::max();
    return static_cast<std::uint32_t>(v < kMax ? v : kMax);
}

/// Feeds every maximal run of set bits (consecutive lost LDUs in the
/// scanned order) to the telemetry slab, word at a time, with runs
/// crossing word boundaries intact.  Bits past the window are zero by
/// construction, so runs terminate correctly at the tail.
void record_loss_runs(const std::uint64_t* w, std::size_t words,
                      obs::telemetry::TelemetrySlab* slab) noexcept {
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < words; ++i) {
        std::uint64_t word = w[i];
        unsigned remaining = 64;
        while (remaining > 0) {
            if ((word & 1U) != 0) {
                unsigned ones = static_cast<unsigned>(std::countr_one(word));
                if (ones > remaining) ones = remaining;
                run += ones;
                word = ones >= 64 ? 0 : word >> ones;
                remaining -= ones;
            } else {
                unsigned zeros =
                    word == 0 ? remaining
                              : static_cast<unsigned>(std::countr_zero(word));
                if (zeros > remaining) zeros = remaining;
                if (slab != nullptr && run > 0) {
                    slab->observe_loss_run(run);
                }
                run = 0;
                word = zeros >= 64 ? 0 : word >> zeros;
                remaining -= zeros;
            }
        }
    }
    if (slab != nullptr && run > 0) slab->observe_loss_run(run);
}

}  // namespace

SessionPool::SessionPool(const EngineConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
    capacity_ = cfg_.sessions;
    n_ = cfg_.window_ldus;
    f_ = cfg_.packets_per_ldu;
    words_ = (n_ + 63) / 64;

    if (cfg_.spread) {
        perms_.resize(n_ + 1);
        for (std::size_t b = 1; b <= n_; ++b) {
            perms_[b] = calculate_permutation(n_, b).perm;
        }
    }

    const std::size_t D = cfg_.feedback_delay_windows;
    data_chain_.reserve(capacity_);
    feedback_chain_.reserve(capacity_);
    estimate_.assign(capacity_, 0.0);
    pending_.assign(capacity_ * D, kNoObs);
    windows_run_.assign(capacity_, 0);
    lifetime_left_.assign(capacity_, 0);
    idle_left_.assign(capacity_, 0);
    gap_next_.assign(capacity_, 0);
    generation_.assign(capacity_, 0);
    tot_windows_.assign(capacity_, 0);
    tot_clf_.assign(capacity_, 0);
    tot_clf_sq_.assign(capacity_, 0);
    tot_losses_.assign(capacity_, 0);
    tot_acks_ok_.assign(capacity_, 0);
    tot_acks_lost_.assign(capacity_, 0);
    tot_spawned_.assign(capacity_, 0);
    tot_completed_.assign(capacity_, 0);
    max_clf_.assign(capacity_, 0);
    if (cfg_.fec.enabled) {
        const std::size_t packets = n_ * f_;
        fec_repairs_per_window_ =
            packets * cfg_.fec.overhead_num / cfg_.fec.overhead_den;
        tot_fec_repairs_.assign(capacity_, 0);
        tot_fec_recovered_.assign(capacity_, 0);
        tot_fec_unrecovered_.assign(capacity_, 0);
        if (cfg_.fec.nack) {
            nack_credit_.assign(capacity_, 0);
            nack_wd_.assign(capacity_, 0);
            tot_nack_sent_.assign(capacity_, 0);
            tot_nack_lost_.assign(capacity_, 0);
            tot_nack_repairs_.assign(capacity_, 0);
            tot_nack_expired_.assign(capacity_, 0);
            tot_nack_proactive_.assign(capacity_, 0);
        }
    }
    if (cfg_.governor.enabled) {
        gov_.assign(capacity_, GovernorLiteState{});
        tot_state_windows_.assign(capacity_ * 4, 0);
        tot_transitions_.assign(capacity_, 0);
    }

    // spawn() assigns into the chain slots, so generation 0 first fills
    // the vectors with placeholder chains (replaced immediately).
    for (std::size_t slot = 0; slot < capacity_; ++slot) {
        sim::Rng placeholder(0);
        data_chain_.emplace_back(cfg_.data_loss, placeholder);
        feedback_chain_.emplace_back(cfg_.feedback_loss, placeholder);
        spawn(slot);
    }
}

std::pair<std::uint32_t, std::uint32_t> SessionPool::churn_draw(
    const EngineConfig& cfg, std::uint64_t session_id) {
    sim::Rng root(sim::derive_seed(cfg.seed, session_id));
    sim::Rng life = root.split(contracts::kEngineLaneChurn);
    const double min_life =
        static_cast<double>(cfg.churn.min_lifetime_windows);
    const double extra = cfg.churn.mean_lifetime_windows > min_life
                             ? cfg.churn.mean_lifetime_windows - min_life
                             : 0.0;
    std::uint64_t lifetime = static_cast<std::uint64_t>(
                                 cfg.churn.min_lifetime_windows) +
                             life.geometric(1.0 / (1.0 + extra));
    if (lifetime == 0) lifetime = 1;
    std::uint64_t gap = 0;
    if (cfg.churn.mean_arrival_gap_windows > 0.0) {
        gap = life.geometric(1.0 / (1.0 + cfg.churn.mean_arrival_gap_windows));
    }
    return {clamp_u32(lifetime), clamp_u32(gap)};
}

void SessionPool::spawn(std::size_t slot) {
    const std::uint64_t id =
        static_cast<std::uint64_t>(generation_[slot]) *
            static_cast<std::uint64_t>(capacity_) +
        static_cast<std::uint64_t>(slot);
    sim::Rng root(sim::derive_seed(cfg_.seed, id));
    data_chain_[slot] =
        net::GilbertLoss(cfg_.data_loss,
                         root.split(contracts::kEngineLaneDataChain));
    feedback_chain_[slot] =
        net::GilbertLoss(cfg_.feedback_loss,
                         root.split(contracts::kEngineLaneFeedbackChain));
    estimate_[slot] = static_cast<double>(n_) / 2.0;
    windows_run_[slot] = 0;
    const std::size_t D = cfg_.feedback_delay_windows;
    for (std::size_t d = 0; d < D; ++d) pending_[slot * D + d] = kNoObs;
    if (cfg_.churn.enabled) {
        const auto [life, gap] = churn_draw(cfg_, id);
        lifetime_left_[slot] = life;
        gap_next_[slot] = gap;
    } else {
        lifetime_left_[slot] = 0;
        gap_next_[slot] = 0;
    }
    if (cfg_.governor.enabled) {
        // Fresh session, fresh supervision: Normal with the prior's bound
        // as the slew reference (the in-progress dwell of a departing
        // session ends unrecorded — only completed visits are observed).
        gov_[slot] = GovernorLiteState{};
        gov_[slot].published = static_cast<std::uint32_t>(
            BurstEstimator::bound_for(estimate_[slot], n_));
    }
    if (cfg_.fec.nack) {
        // A fresh session starts with an empty bank and a live path.
        nack_credit_[slot] = 0;
        nack_wd_[slot] = 0;
    }
    ++tot_spawned_[slot];
}

void SessionPool::init_scratch(ShardScratch& s) const {
    s.tx_words.assign(words_, 0);
    s.pb_words.assign(words_, 0);
    s.clf_hist.assign(n_ + 1, 0);
    s.bound_hist.assign(n_ + 1, 0);
    s.idle_windows = 0;
}

void SessionPool::run_window_range(std::size_t begin, std::size_t end,
                                   ShardScratch& s) noexcept {
    const std::size_t D = cfg_.feedback_delay_windows;
    const std::size_t packets = n_ * f_;
    const bool governed = cfg_.governor.enabled;
    const bool fec_on = cfg_.fec.enabled;
    const bool nack_on = cfg_.fec.nack;
    std::uint64_t* tx = s.tx_words.data();
    std::uint64_t* pb = s.pb_words.data();
    obs::telemetry::TelemetrySlab* const tel = s.telemetry;
    for (std::size_t slot = begin; slot < end; ++slot) {
        if (idle_left_[slot] > 0) {
            // Churn gap: the slot carries no session this window.  The
            // arriving session's first window runs on the next step.
            ++s.idle_windows;
            if (tel != nullptr) tel->observe_idle();
            if (--idle_left_[slot] == 0) {
                ++generation_[slot];
                spawn(slot);
                if (tel != nullptr) tel->observe_spawn();
            }
            continue;
        }

        // 1. Feedback that has aged feedback_delay_windows becomes the
        //    Eq. 1 observation shaping this window (Fig. 6 pipeline).
        const std::uint32_t w = windows_run_[slot];
        std::uint32_t& cell = pending_[slot * D + (w % D)];
        const bool fed = cell != kNoObs;
        if (fed) {
            estimate_[slot] = cfg_.alpha * static_cast<double>(cell) +
                              (1.0 - cfg_.alpha) * estimate_[slot];
            cell = kNoObs;
        }
        std::size_t bound;
        std::uint8_t gov_state = kGovNormal;
        if (governed) {
            // Governor-lite supervision: the watchdog arms once feedback
            // could have arrived (w >= D); the published bound may be
            // decayed, pinned to the prior or slew-limited by state.
            const GovernorLiteOutcome o = governor_lite_step(
                gov_[slot], cfg_.governor, static_cast<std::size_t>(w) >= D,
                fed, estimate_[slot], n_);
            bound = o.bound;
            gov_state = gov_[slot].state;
            ++tot_state_windows_[slot * 4 + gov_state];
            if (o.transitioned) {
                ++tot_transitions_[slot];
                if (tel != nullptr) tel->observe_governor_exit(o.exit_dwell);
            }
        } else {
            bound = BurstEstimator::bound_for(estimate_[slot], n_);
        }

        // 2. Channel: batched Gilbert runs -> lost-LDU bit ranges in
        //    transmission order (an LDU is lost if any of its packets is).
        std::fill_n(tx, words_, std::uint64_t{0});
        net::GilbertLoss& chain = data_chain_[slot];
        std::size_t pkt = 0;
        std::size_t lost_pkts = 0;
        bool any_loss = false;
        while (pkt < packets) {
            const net::GilbertLoss::Run run =
                chain.next_run(static_cast<std::uint64_t>(packets - pkt));
            const std::size_t len = static_cast<std::size_t>(run.length);
            if (run.lost) {
                any_loss = true;
                lost_pkts += len;
                set_bits(tx, pkt / f_, (pkt + len - 1) / f_);
            }
            pkt += len;
        }

        // 2b. FEC-lite: the window's repair packets ride the same chain,
        //     and are always sent (constant bandwidth, shard-independent
        //     chain advance even on loss-free windows).  Under NACK-lite
        //     the accrual banks instead, and releases only for a lossy
        //     window whose NACK — piggybacked on this window's feedback
        //     packet, drawn here so the feedback chain still advances
        //     exactly once per window — survives the channel; a watchdog
        //     of consecutive lost feedbacks reverts to the fixed schedule.
        std::size_t fec_survived = 0;
        std::size_t fec_repairs_this_window = 0;
        bool nack_fb_lost = false;     // this window's feedback draw
        bool nack_reactive = false;    // draw happened here, skip stage 4's
        if (fec_on) {
            if (nack_on && nack_wd_[slot] < cfg_.fec.nack_watchdog_windows) {
                nack_reactive = true;
                const std::size_t cap = cfg_.fec.nack_credit_cap;
                const std::size_t bank = nack_credit_[slot];
                const std::size_t add =
                    std::min(cap - std::min(cap, bank),
                             fec_repairs_per_window_);
                nack_credit_[slot] = static_cast<std::uint32_t>(bank + add);
                tot_nack_expired_[slot] += fec_repairs_per_window_ - add;
                nack_fb_lost = feedback_chain_[slot].drop_next();
                if (any_loss) {
                    ++tot_nack_sent_[slot];
                    if (nack_fb_lost) {
                        ++tot_nack_lost_[slot];
                    } else {
                        fec_repairs_this_window = std::min<std::size_t>(
                            nack_credit_[slot], lost_pkts);
                        nack_credit_[slot] -= static_cast<std::uint32_t>(
                            fec_repairs_this_window);
                        tot_nack_repairs_[slot] += fec_repairs_this_window;
                    }
                }
            } else {
                // Plain FEC-lite, or the NACK watchdog fired: fixed
                // proactive schedule (graceful degradation).
                fec_repairs_this_window = fec_repairs_per_window_;
                if (nack_on) ++tot_nack_proactive_[slot];
            }
            std::size_t rp = 0;
            while (rp < fec_repairs_this_window) {
                const net::GilbertLoss::Run run = chain.next_run(
                    static_cast<std::uint64_t>(fec_repairs_this_window - rp));
                const std::size_t len = static_cast<std::size_t>(run.length);
                if (!run.lost) fec_survived += len;
                rp += len;
            }
        }

        // 3. Unspread + continuity accounting, word at a time.  A window
        //    whose surviving repairs cover its lost source packets is
        //    repaired whole before playback (all-or-nothing MDS limit);
        //    the transmission-order observation `obs` is taken first, so
        //    feedback still reports the raw channel.
        std::size_t obs = 0;
        std::size_t clf = 0;
        std::size_t losses = 0;
        bool recovered = false;
        if (any_loss) {
            losses = count_set_bits(tx, words_);
            obs = max_set_run(tx, words_);
            if (fec_on && fec_survived >= lost_pkts) {
                recovered = true;
                losses = 0;
            } else if (cfg_.spread) {
                std::fill_n(pb, words_, std::uint64_t{0});
                perms_[bound].scatter_set_bits(tx, pb, words_);
                clf = max_set_run(pb, words_);
            } else {
                clf = obs;
            }
        }

        // 4. The client ACKs its transmission-order burst observation
        //    across the (lossy) feedback channel.  Under reactive
        //    NACK-lite the draw already happened in 2b (the NACK and ACK
        //    share the window's feedback packet); reusing it keeps the
        //    chain at one draw per window in every mode.
        const bool ack_lost =
            nack_reactive ? nack_fb_lost : feedback_chain_[slot].drop_next();
        if (nack_on) nack_wd_[slot] = ack_lost ? nack_wd_[slot] + 1 : 0;
        if (ack_lost) {
            ++tot_acks_lost_[slot];
        } else {
            pending_[slot * D + (w % D)] = static_cast<std::uint32_t>(obs);
            ++tot_acks_ok_[slot];
        }
        if (tel != nullptr) tel->observe_ack(!ack_lost);

        // 5. Integer accumulators (grouping-independent merge).
        ++tot_windows_[slot];
        tot_clf_[slot] += clf;
        tot_clf_sq_[slot] +=
            static_cast<std::uint64_t>(clf) * static_cast<std::uint64_t>(clf);
        tot_losses_[slot] += losses;
        if (clf > max_clf_[slot]) max_clf_[slot] = static_cast<std::uint32_t>(clf);
        ++s.clf_hist[clf];
        ++s.bound_hist[bound];
        if (fec_on) {
            tot_fec_repairs_[slot] += fec_repairs_this_window;
            if (any_loss) {
                if (recovered) {
                    ++tot_fec_recovered_[slot];
                } else {
                    ++tot_fec_unrecovered_[slot];
                }
            }
        }
        windows_run_[slot] = w + 1;
        if (tel != nullptr) {
            tel->observe_window(static_cast<std::uint64_t>(clf),
                                static_cast<std::uint64_t>(bound),
                                static_cast<std::uint64_t>(losses), gov_state);
            if (any_loss && !recovered) {
                record_loss_runs(cfg_.spread ? pb : tx, words_, tel);
            }
        }

        // 6. Churn: departure, then either an idle gap or an immediate
        //    respawn with a fresh RNG stream (new session id).
        if (lifetime_left_[slot] > 0 && --lifetime_left_[slot] == 0) {
            ++tot_completed_[slot];
            if (tel != nullptr) tel->observe_complete();
            if (gap_next_[slot] > 0) {
                idle_left_[slot] = gap_next_[slot];
            } else {
                ++generation_[slot];
                spawn(slot);
                if (tel != nullptr) tel->observe_spawn();
            }
        }
    }
}

EngineSummary SessionPool::summarize(
    const std::vector<ShardScratch>& shards) const {
    EngineSummary out;
    out.sessions = capacity_;
    for (std::size_t slot = 0; slot < capacity_; ++slot) {
        if (idle_left_[slot] == 0) ++out.active_sessions;
        out.windows += tot_windows_[slot];
        out.unit_losses += tot_losses_[slot];
        out.acks_delivered += tot_acks_ok_[slot];
        out.acks_lost += tot_acks_lost_[slot];
        out.sessions_spawned += tot_spawned_[slot];
        out.sessions_completed += tot_completed_[slot];
        out.clf_max = std::max<std::uint64_t>(out.clf_max, max_clf_[slot]);
    }
    if (cfg_.fec.enabled) {
        out.fec = true;
        for (std::size_t slot = 0; slot < capacity_; ++slot) {
            out.fec_repair_packets += tot_fec_repairs_[slot];
            out.fec_windows_recovered += tot_fec_recovered_[slot];
            out.fec_windows_unrecovered += tot_fec_unrecovered_[slot];
        }
    }
    if (cfg_.fec.nack) {
        out.nack = true;
        for (std::size_t slot = 0; slot < capacity_; ++slot) {
            out.nack_requests_sent += tot_nack_sent_[slot];
            out.nack_requests_lost += tot_nack_lost_[slot];
            out.nack_repair_packets += tot_nack_repairs_[slot];
            out.nack_credits_expired += tot_nack_expired_[slot];
            out.nack_windows_proactive += tot_nack_proactive_[slot];
        }
    }
    if (cfg_.governor.enabled) {
        for (std::size_t slot = 0; slot < capacity_; ++slot) {
            for (std::size_t st = 0; st < 4; ++st) {
                out.governor_windows[st] += tot_state_windows_[slot * 4 + st];
            }
            out.governor_transitions += tot_transitions_[slot];
        }
    } else {
        // Unsupervised sessions run entirely in Normal; deriving the
        // occupancy here keeps the hot path free of governor writes.
        out.governor_windows[0] = out.windows;
    }
    out.slots = out.windows * static_cast<std::uint64_t>(n_);
    std::uint64_t clf_sum = 0;
    std::uint64_t clf_sq = 0;
    for (std::size_t slot = 0; slot < capacity_; ++slot) {
        clf_sum += tot_clf_[slot];
        clf_sq += tot_clf_sq_[slot];
    }
    if (out.windows > 0) {
        const double w = static_cast<double>(out.windows);
        out.alf = static_cast<double>(out.unit_losses) /
                  static_cast<double>(out.slots);
        out.clf_mean = static_cast<double>(clf_sum) / w;
        const double var =
            static_cast<double>(clf_sq) / w - out.clf_mean * out.clf_mean;
        out.clf_dev = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    for (const ShardScratch& s : shards) {
        out.idle_windows += s.idle_windows;
        for (std::size_t v = 0; v < s.clf_hist.size(); ++v) {
            if (s.clf_hist[v] > 0) {
                out.clf_histogram.add(static_cast<std::int64_t>(v),
                                      static_cast<std::size_t>(s.clf_hist[v]));
            }
        }
        for (std::size_t b = 0; b < s.bound_hist.size(); ++b) {
            if (s.bound_hist[b] > 0) {
                out.bound_histogram.add(static_cast<std::int64_t>(b),
                                        static_cast<std::size_t>(s.bound_hist[b]));
            }
        }
    }
    if (cfg_.collect_metrics) {
        out.metrics.add_counter("engine/windows", out.windows);
        out.metrics.add_counter("engine/unit_losses", out.unit_losses);
        out.metrics.add_counter("engine/acks_delivered", out.acks_delivered);
        out.metrics.add_counter("engine/acks_lost", out.acks_lost);
        out.metrics.add_counter("engine/sessions_spawned", out.sessions_spawned);
        out.metrics.add_counter("engine/sessions_completed",
                                out.sessions_completed);
        out.metrics.add_counter("engine/idle_windows", out.idle_windows);
        if (cfg_.fec.enabled) {
            out.metrics.add_counter("engine/fec_repair_packets",
                                    out.fec_repair_packets);
            out.metrics.add_counter("engine/fec_windows_recovered",
                                    out.fec_windows_recovered);
            out.metrics.add_counter("engine/fec_windows_unrecovered",
                                    out.fec_windows_unrecovered);
        }
        if (cfg_.fec.nack) {
            out.metrics.add_counter("engine/nack_requests_sent",
                                    out.nack_requests_sent);
            out.metrics.add_counter("engine/nack_requests_lost",
                                    out.nack_requests_lost);
            out.metrics.add_counter("engine/nack_repair_packets",
                                    out.nack_repair_packets);
            out.metrics.add_counter("engine/nack_credits_expired",
                                    out.nack_credits_expired);
            out.metrics.add_counter("engine/nack_windows_proactive",
                                    out.nack_windows_proactive);
        }
        if (cfg_.governor.enabled) {
            out.metrics.add_counter("engine/governor_windows_normal",
                                    out.governor_windows[0]);
            out.metrics.add_counter("engine/governor_windows_degraded",
                                    out.governor_windows[1]);
            out.metrics.add_counter("engine/governor_windows_fallback",
                                    out.governor_windows[2]);
            out.metrics.add_counter("engine/governor_windows_recovering",
                                    out.governor_windows[3]);
            out.metrics.add_counter("engine/governor_transitions",
                                    out.governor_transitions);
        }
        out.metrics.histogram("engine/window_clf").merge(out.clf_histogram);
        out.metrics.histogram("engine/bound_used").merge(out.bound_histogram);
    }
    return out;
}

}  // namespace espread::engine
