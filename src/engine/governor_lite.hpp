// Governor-lite: the engine's per-slot supervision state machine.
//
// One inline step function shared verbatim by the SoA pool hot path and
// the scalar reference (engine/reference.cpp), so test_engine can pin the
// governed window loop the same way it pins the ungoverned one.  The
// machine watches the Fig. 6 feedback pipeline: a window whose pending
// cell is empty when it comes due is a "miss".
//
//   Normal     -- miss_budget consecutive misses --> Degraded
//   Degraded   -- each miss decays the estimate toward the prior n/2;
//                 fallback_budget misses --> Fallback; feedback --> Recovering
//   Fallback   -- estimate pinned at the prior; feedback --> Recovering
//   Recovering -- published bound slews toward the raw Eq. 1 bound by at
//                 most max_step per window; a miss --> Degraded;
//                 recovery_windows fed windows --> Normal
//
// All arithmetic is plain doubles/integers evaluated in one fixed order
// (the decay expression matches BurstEstimator::decay_toward_prior), so
// governed runs keep the engine's byte-identical-across-shards contract.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/estimator.hpp"
#include "engine/config.hpp"

namespace espread::engine {

// Governor-lite states, also the index space of the telemetry plane's
// governor_windows occupancy counters.
inline constexpr std::uint8_t kGovNormal = 0;
inline constexpr std::uint8_t kGovDegraded = 1;
inline constexpr std::uint8_t kGovFallback = 2;
inline constexpr std::uint8_t kGovRecovering = 3;

inline const char* governor_lite_state_name(std::uint8_t state) noexcept {
    switch (state) {
        case kGovNormal: return "normal";
        case kGovDegraded: return "degraded";
        case kGovFallback: return "fallback";
        case kGovRecovering: return "recovering";
        default: return "?";
    }
}

/// Per-session supervision state (16 bytes; one per pool slot).
struct GovernorLiteState {
    std::uint8_t state = kGovNormal;
    std::uint32_t misses = 0;     ///< consecutive misses in Normal/Degraded
    std::uint32_t streak = 0;     ///< consecutive fed windows in Recovering
    std::uint32_t dwell = 0;      ///< windows run in the current state
    std::uint32_t published = 0;  ///< bound the previous window was sent with
};

/// What one governed window did (telemetry + trace fodder).
struct GovernorLiteOutcome {
    std::size_t bound = 0;        ///< bound to send this window with
    bool transitioned = false;
    std::uint8_t from = kGovNormal;   ///< exited state, when transitioned
    std::uint32_t exit_dwell = 0;     ///< windows spent in the exited state
};

/// Runs one window of supervision.  `armed` is false until the feedback
/// pipeline could have delivered (window index >= feedback_delay_windows);
/// `fed` says whether this window's pending cell held an observation.
/// Call AFTER the Eq. 1 EWMA has been applied for a fed window; the
/// function may further move `estimate` (decay / pin to prior) and
/// returns the bound to publish.  After it returns, g.state is the state
/// this window ran under and g.dwell already counts it.
inline GovernorLiteOutcome governor_lite_step(GovernorLiteState& g,
                                              const GovernorLiteConfig& cfg,
                                              bool armed, bool fed,
                                              double& estimate,
                                              std::size_t n) noexcept {
    GovernorLiteOutcome out;
    const double prior = static_cast<double>(n) / 2.0;
    const auto enter = [&g, &out](std::uint8_t next) noexcept {
        out.transitioned = true;
        out.from = g.state;
        out.exit_dwell = g.dwell;
        g.state = next;
        g.dwell = 0;
        g.misses = 0;
        g.streak = 0;
    };
    if (armed) {
        switch (g.state) {
            case kGovNormal:
                if (fed) {
                    g.misses = 0;
                } else if (++g.misses >= cfg.miss_budget) {
                    enter(kGovDegraded);
                }
                break;
            case kGovDegraded:
                if (fed) {
                    enter(kGovRecovering);
                } else {
                    estimate = prior + (estimate - prior) * cfg.outage_decay;
                    if (++g.misses >= cfg.fallback_budget) {
                        enter(kGovFallback);
                        estimate = prior;
                    }
                }
                break;
            case kGovFallback:
                if (fed) {
                    enter(kGovRecovering);
                } else {
                    estimate = prior;
                }
                break;
            case kGovRecovering:
                if (!fed) {
                    enter(kGovDegraded);
                } else if (++g.streak >= cfg.recovery_windows) {
                    enter(kGovNormal);
                }
                break;
            default:
                break;
        }
    }
    const std::size_t raw = BurstEstimator::bound_for(estimate, n);
    std::size_t bound = raw;
    if (g.state == kGovRecovering) {
        const std::size_t prev = g.published;
        if (raw > prev + cfg.max_step) {
            bound = prev + cfg.max_step;
        } else if (prev > raw && prev - raw > cfg.max_step) {
            bound = prev - cfg.max_step;
        }
    }
    g.published = static_cast<std::uint32_t>(bound);
    ++g.dwell;
    out.bound = bound;
    return out;
}

}  // namespace espread::engine
