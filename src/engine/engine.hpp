// ShardedEngine: the session pool split across a fixed worker fleet.
//
// The pool's slot axis is cut into one contiguous range per shard; every
// step() runs each range on its own worker (or inline when there is only
// one shard, which keeps the single-shard hot path free of even the task
// dispatch's allocations).  Because each slot's randomness is keyed by
// (seed, session id) and all accumulators merge in slot order, a run's
// summary is byte-identical for any shard count — sharding buys
// wall-clock only, never different numbers.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/config.hpp"
#include "engine/pool.hpp"
#include "exp/thread_pool.hpp"
#include "obs/telemetry/snapshot.hpp"

namespace espread::exp {
class JsonWriter;
}

namespace espread::engine {

class ShardedEngine {
public:
    /// Validates the config, resolves shards (0 = hardware threads,
    /// clamped to the session count), builds the pool and, for more than
    /// one shard, the worker fleet.
    explicit ShardedEngine(const EngineConfig& cfg);

    const EngineConfig& config() const noexcept { return cfg_; }
    std::size_t shards() const noexcept { return scratch_.size(); }
    const SessionPool& pool() const noexcept { return pool_; }

    /// Advances every active session by one buffer window.  Single shard:
    /// runs inline, zero allocations.  Multiple shards: dispatches one
    /// task per shard and waits (O(shards) task allocations per step;
    /// the per-session work itself still allocates nothing).
    void step();

    /// step() `windows` times.
    void run(std::size_t windows);

    /// Steps completed so far (the telemetry plane's epoch clock).
    std::uint64_t steps() const noexcept { return steps_; }

    /// The fleet snapshot series, or null when cfg.telemetry is off.
    /// Snapshots are captured between steps — after every
    /// cfg.telemetry.epoch_steps-th step, when all shards are idle — so
    /// the series is byte-identical across shard counts.
    const obs::telemetry::SnapshotRegistry* telemetry() const noexcept {
        return registry_.get();
    }

    /// Deterministic summary of everything run so far.
    EngineSummary summary() const { return pool_.summarize(scratch_); }

private:
    static EngineConfig normalize(EngineConfig cfg);

    EngineConfig cfg_;   // normalized: shards resolved, validated
    SessionPool pool_;
    std::vector<ShardScratch> scratch_;                      // one per shard
    std::vector<std::pair<std::size_t, std::size_t>> ranges_; // slot ranges
    std::unique_ptr<exp::ThreadPool> workers_;  // null when single shard

    // Telemetry plane (empty / null when cfg.telemetry is off).
    std::vector<obs::telemetry::TelemetrySlab> slabs_;  // one per shard
    std::unique_ptr<obs::telemetry::SnapshotRegistry> registry_;
    std::uint64_t steps_ = 0;
};

/// Appends the summary as one JSON object (scalars, histograms, and the
/// metrics registry).  Contains no wall-clock fields, so the rendering is
/// usable as a determinism fingerprint.
void append_summary(exp::JsonWriter& json, const EngineSummary& s);

/// The summary rendered as a standalone JSON string (test fingerprint).
std::string summary_json(const EngineSummary& s);

}  // namespace espread::engine
