#include "engine/reference.hpp"

#include <optional>

#include "core/cpo.hpp"
#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "core/permutation.hpp"
#include "net/gilbert.hpp"
#include "sim/rng.hpp"

namespace espread::engine {

ReferenceTrace run_reference_session(const EngineConfig& cfg,
                                     std::uint64_t session_id,
                                     std::size_t windows) {
    cfg.validate();
    const std::size_t n = cfg.window_ldus;
    const std::size_t f = cfg.packets_per_ldu;
    const std::size_t D = cfg.feedback_delay_windows;

    sim::Rng root(sim::derive_seed(cfg.seed, session_id));
    net::GilbertLoss data(cfg.data_loss, root.split(1));
    net::GilbertLoss feedback(cfg.feedback_loss, root.split(2));
    BurstEstimator estimator(n, cfg.alpha);
    std::vector<std::optional<std::size_t>> pending(D);

    ReferenceTrace trace;
    trace.window_clf.reserve(windows);
    trace.window_bound.reserve(windows);
    for (std::size_t w = 0; w < windows; ++w) {
        if (pending[w % D]) {
            estimator.update(*pending[w % D]);
            pending[w % D].reset();
        }
        const std::size_t bound = estimator.bound();

        // One drop_next per packet; an LDU is lost if any packet is.
        LossMask tx_delivered(n, true);
        for (std::size_t ldu = 0; ldu < n; ++ldu) {
            for (std::size_t p = 0; p < f; ++p) {
                if (data.drop_next()) tx_delivered[ldu] = false;
            }
        }

        const Permutation perm = cfg.spread
                                     ? calculate_permutation(n, bound).perm
                                     : Permutation::identity(n);
        const LossMask playback = perm.unapply(tx_delivered);

        const std::size_t obs = consecutive_loss(tx_delivered);
        trace.window_clf.push_back(consecutive_loss(playback));
        trace.window_bound.push_back(bound);
        trace.unit_losses += aggregate_loss_count(playback);

        if (feedback.drop_next()) {
            ++trace.acks_lost;
        } else {
            pending[w % D] = obs;
            ++trace.acks_delivered;
        }
    }
    return trace;
}

}  // namespace espread::engine
