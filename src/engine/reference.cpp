#include "engine/reference.hpp"

#include <optional>

#include "core/cpo.hpp"
#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "core/permutation.hpp"
#include "engine/governor_lite.hpp"
#include "net/gilbert.hpp"
#include "sim/contracts.hpp"
#include "sim/rng.hpp"

namespace espread::engine {

ReferenceTrace run_reference_session(const EngineConfig& cfg,
                                     std::uint64_t session_id,
                                     std::size_t windows) {
    cfg.validate();
    const std::size_t n = cfg.window_ldus;
    const std::size_t f = cfg.packets_per_ldu;
    const std::size_t D = cfg.feedback_delay_windows;
    const std::size_t repairs =
        cfg.fec.enabled ? n * f * cfg.fec.overhead_num / cfg.fec.overhead_den
                        : 0;

    sim::Rng root(sim::derive_seed(cfg.seed, session_id));
    net::GilbertLoss data(cfg.data_loss,
                          root.split(contracts::kEngineLaneDataChain));
    net::GilbertLoss feedback(cfg.feedback_loss,
                              root.split(contracts::kEngineLaneFeedbackChain));
    // Plain-double Eq. 1 state, written with the exact expressions the
    // pool uses (identical to BurstEstimator::update), so governed and
    // ungoverned traces both predict the SoA slot bit-for-bit.
    double estimate = static_cast<double>(n) / 2.0;
    GovernorLiteState gov;
    gov.published =
        static_cast<std::uint32_t>(BurstEstimator::bound_for(estimate, n));
    std::vector<std::optional<std::size_t>> pending(D);

    ReferenceTrace trace;
    trace.window_clf.reserve(windows);
    trace.window_bound.reserve(windows);
    trace.window_state.reserve(windows);
    for (std::size_t w = 0; w < windows; ++w) {
        const bool fed = pending[w % D].has_value();
        if (fed) {
            estimate = cfg.alpha * static_cast<double>(*pending[w % D]) +
                       (1.0 - cfg.alpha) * estimate;
            pending[w % D].reset();
        }
        std::size_t bound;
        if (cfg.governor.enabled) {
            const GovernorLiteOutcome o =
                governor_lite_step(gov, cfg.governor, w >= D, fed, estimate, n);
            bound = o.bound;
            if (o.transitioned) ++trace.governor_transitions;
        } else {
            bound = BurstEstimator::bound_for(estimate, n);
        }
        trace.window_state.push_back(gov.state);

        // One drop_next per packet; an LDU is lost if any packet is.
        LossMask tx_delivered(n, true);
        std::size_t lost_pkts = 0;
        for (std::size_t ldu = 0; ldu < n; ++ldu) {
            for (std::size_t p = 0; p < f; ++p) {
                if (data.drop_next()) {
                    tx_delivered[ldu] = false;
                    ++lost_pkts;
                }
            }
        }

        // FEC-lite mirror: the repair packets always follow the sources
        // through the same chain; a lossy window is repaired whole iff
        // the survivors cover the lost source packets.
        std::size_t fec_survived = 0;
        if (cfg.fec.enabled) {
            for (std::size_t r = 0; r < repairs; ++r) {
                if (!data.drop_next()) ++fec_survived;
            }
            trace.fec_repair_packets += repairs;
        }
        const bool recovered =
            cfg.fec.enabled && lost_pkts > 0 && fec_survived >= lost_pkts;
        if (recovered) ++trace.fec_windows_recovered;

        const std::size_t obs = consecutive_loss(tx_delivered);
        const Permutation perm = cfg.spread
                                     ? calculate_permutation(n, bound).perm
                                     : Permutation::identity(n);
        const LossMask playback =
            recovered ? LossMask(n, true) : perm.unapply(tx_delivered);

        trace.window_clf.push_back(consecutive_loss(playback));
        trace.window_bound.push_back(bound);
        trace.unit_losses += aggregate_loss_count(playback);

        if (feedback.drop_next()) {
            ++trace.acks_lost;
        } else {
            pending[w % D] = obs;
            ++trace.acks_delivered;
        }
    }
    return trace;
}

}  // namespace espread::engine
