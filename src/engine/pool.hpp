// Structure-of-arrays session pool — the engine's hot data.
//
// Per-session state (Gilbert chains, Eq. 1 estimate, pending-feedback
// ring, churn counters, metric accumulators) lives in parallel arrays
// indexed by slot, not in per-session objects.  A window step walks a
// contiguous slot range touching only these arenas plus a per-shard
// scratch buffer, so the steady-state path performs zero heap
// allocations (pinned by test_alloc) and shards never write to shared
// cache lines.
//
// Determinism contract: every random draw of slot s in its g-th occupancy
// comes from the stream seeded by derive_seed(seed, g * capacity + s), and
// all accumulators are integers merged in slot/shard order, so summaries
// are byte-identical for any shard count (pinned by test_engine).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/permutation.hpp"
#include "engine/config.hpp"
#include "engine/governor_lite.hpp"
#include "net/gilbert.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/slab.hpp"
#include "sim/stats.hpp"

namespace espread::engine {

/// Per-shard working memory: the packed loss-mask scratch words plus the
/// distribution accumulators that would be wasteful per slot.  All counts
/// are integers, and histograms are flat arrays merged by addition, so
/// folding shards in index order yields grouping-independent totals.
struct ShardScratch {
    std::vector<std::uint64_t> tx_words;   ///< transmission-order loss bits
    std::vector<std::uint64_t> pb_words;   ///< playback-order loss bits
    std::vector<std::uint64_t> clf_hist;   ///< bin v = windows with CLF == v
    std::vector<std::uint64_t> bound_hist; ///< bin b = windows sent with bound b
    std::uint64_t idle_windows = 0;        ///< slot-windows spent unoccupied
    /// Telemetry plane sink for this shard; null when telemetry is off.
    /// Every use in the hot path is null-gated (one predictable branch),
    /// so the disabled step loop stays allocation-free and unperturbed.
    obs::telemetry::TelemetrySlab* telemetry = nullptr;
};

/// Everything summarize() derives from the arenas.  Doubles are computed
/// from integer totals in a fixed order, so they too are bit-identical
/// across shard counts.
struct EngineSummary {
    std::size_t sessions = 0;          ///< pool capacity (slots)
    std::size_t active_sessions = 0;   ///< slots occupied at summary time
    std::uint64_t windows = 0;         ///< session-windows executed
    std::uint64_t slots = 0;           ///< LDU playback slots (windows * n)
    std::uint64_t unit_losses = 0;     ///< lost LDU slots
    std::uint64_t idle_windows = 0;    ///< churn gaps (no session in slot)
    double alf = 0.0;                  ///< unit_losses / slots
    double clf_mean = 0.0;             ///< mean per-window CLF
    double clf_dev = 0.0;              ///< population std-dev of window CLF
    std::uint64_t clf_max = 0;         ///< worst window CLF seen
    std::uint64_t acks_delivered = 0;  ///< feedback packets that survived
    std::uint64_t acks_lost = 0;       ///< feedback packets dropped
    std::uint64_t sessions_spawned = 0;
    std::uint64_t sessions_completed = 0;
    /// Windows run under each governor-lite state (all in [0] = Normal
    /// when supervision is off).  Reconciles with the telemetry plane's
    /// TelemetryCounters::governor_windows (pinned by test_telemetry).
    std::uint64_t governor_windows[4] = {0, 0, 0, 0};
    std::uint64_t governor_transitions = 0;  ///< governor-lite state changes
    /// FEC-lite arm (all zero, and absent from summary_json, when off).
    bool fec = false;                        ///< arm enabled this run
    std::uint64_t fec_repair_packets = 0;    ///< repair packets sent
    std::uint64_t fec_windows_recovered = 0; ///< lossy windows fully repaired
    std::uint64_t fec_windows_unrecovered = 0;  ///< lossy windows left coded-out
    /// NACK-lite arm (all zero, and absent from summary_json, when off).
    bool nack = false;                        ///< receiver-driven repair on
    std::uint64_t nack_requests_sent = 0;     ///< lossy reactive windows
    std::uint64_t nack_requests_lost = 0;     ///< NACKs the channel dropped
    std::uint64_t nack_repair_packets = 0;    ///< banked repairs released
    std::uint64_t nack_credits_expired = 0;   ///< accrual lost to the cap
    std::uint64_t nack_windows_proactive = 0; ///< watchdog-degraded windows
    sim::Histogram clf_histogram;      ///< per-window CLF distribution
    sim::Histogram bound_histogram;    ///< Eq. 1 bound usage distribution
    obs::MetricsRegistry metrics;      ///< filled when collect_metrics
};

/// SoA arenas plus the batched window step.  Thread-safety: disjoint slot
/// ranges may run concurrently (each slot's state is written only by the
/// shard that owns its range); construction and summarize() are
/// single-threaded.
class SessionPool {
public:
    /// Validates `cfg`, sizes every arena to cfg.sessions slots, builds
    /// the k-CPO permutation cache for bounds 1..n, and spawns generation
    /// 0 of every slot.
    explicit SessionPool(const EngineConfig& cfg);

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t window_ldus() const noexcept { return n_; }
    const EngineConfig& config() const noexcept { return cfg_; }

    /// Sizes a shard's scratch buffers for this pool.  Any later
    /// run_window_range into it allocates nothing.
    void init_scratch(ShardScratch& s) const;

    /// Runs one buffer window for every occupied slot in [begin, end):
    /// pending feedback -> Eq. 1 bound -> batched Gilbert runs marked into
    /// packed tx words -> permutation scatter into playback words ->
    /// word-at-a-time CLF/ALF accounting -> ACK across the feedback
    /// channel -> churn bookkeeping.  Touches only slot state in the range
    /// and `s`; never allocates.
    void run_window_range(std::size_t begin, std::size_t end,
                          ShardScratch& s) noexcept;

    /// Folds slot totals (in slot order) and shard scratches (in shard
    /// order) into an EngineSummary.
    EngineSummary summarize(const std::vector<ShardScratch>& shards) const;

    /// The (lifetime, arrival-gap) pair the churn model draws for a
    /// session id, exposed so tests can predict generation boundaries.
    /// Draws come from stream 3 of the session's root RNG; data and
    /// feedback chains use streams 1 and 2.
    static std::pair<std::uint32_t, std::uint32_t> churn_draw(
        const EngineConfig& cfg, std::uint64_t session_id);

private:
    /// (Re)initializes slot state for session id
    /// generation_[slot] * capacity + slot.  Pre-validated params: no
    /// throw path in practice.
    void spawn(std::size_t slot);

    EngineConfig cfg_;
    std::size_t capacity_ = 0;
    std::size_t n_ = 0;      ///< LDUs per window
    std::size_t f_ = 0;      ///< packets per LDU
    std::size_t words_ = 0;  ///< 64-bit words covering n_ bits

    /// perms_[b] = calculate_permutation(n, b) for b in 1..n (index 0
    /// unused); built once so the hot path never recomputes an order.
    std::vector<Permutation> perms_;

    // Hot per-slot state (SoA).
    std::vector<net::GilbertLoss> data_chain_;
    std::vector<net::GilbertLoss> feedback_chain_;
    std::vector<double> estimate_;         ///< Eq. 1 EWMA, prior n/2
    std::vector<std::uint32_t> pending_;   ///< feedback ring, kNoObs = empty
    std::vector<std::uint32_t> windows_run_;
    std::vector<std::uint32_t> lifetime_left_;  ///< 0 = immortal
    std::vector<std::uint32_t> idle_left_;      ///< > 0: slot unoccupied
    std::vector<std::uint32_t> gap_next_;       ///< idle gap after departure
    std::vector<std::uint32_t> generation_;     ///< occupancy count of slot

    // Per-slot integer totals, never reset across generations.
    std::vector<std::uint64_t> tot_windows_;
    std::vector<std::uint64_t> tot_clf_;
    std::vector<std::uint64_t> tot_clf_sq_;
    std::vector<std::uint64_t> tot_losses_;
    std::vector<std::uint64_t> tot_acks_ok_;
    std::vector<std::uint64_t> tot_acks_lost_;
    std::vector<std::uint64_t> tot_spawned_;
    std::vector<std::uint64_t> tot_completed_;
    std::vector<std::uint32_t> max_clf_;

    // FEC-lite arm (sized only when cfg_.fec.enabled, so an uncoded pool
    // pays nothing).
    std::size_t fec_repairs_per_window_ = 0;
    std::vector<std::uint64_t> tot_fec_repairs_;
    std::vector<std::uint64_t> tot_fec_recovered_;
    std::vector<std::uint64_t> tot_fec_unrecovered_;

    // NACK-lite arenas (sized iff cfg.fec.nack; all per-slot, so the
    // shard-count determinism contract is untouched).
    std::vector<std::uint32_t> nack_credit_;  ///< banked repair packets
    std::vector<std::uint32_t> nack_wd_;      ///< consecutive lost feedbacks
    std::vector<std::uint64_t> tot_nack_sent_;
    std::vector<std::uint64_t> tot_nack_lost_;
    std::vector<std::uint64_t> tot_nack_repairs_;
    std::vector<std::uint64_t> tot_nack_expired_;
    std::vector<std::uint64_t> tot_nack_proactive_;

    // Governor-lite supervision (sized only when cfg_.governor.enabled,
    // so an unsupervised pool pays nothing).
    std::vector<GovernorLiteState> gov_;
    std::vector<std::uint64_t> tot_state_windows_;  ///< capacity * 4
    std::vector<std::uint64_t> tot_transitions_;
};

}  // namespace espread::engine
