#include "engine/engine.hpp"

#include <string>

#include "exp/json.hpp"
#include "obs/metrics.hpp"

namespace espread::engine {

EngineConfig ShardedEngine::normalize(EngineConfig cfg) {
    cfg.validate();
    if (cfg.shards == 0) cfg.shards = exp::ThreadPool::hardware_threads();
    if (cfg.shards > cfg.sessions) cfg.shards = cfg.sessions;
    return cfg;
}

ShardedEngine::ShardedEngine(const EngineConfig& cfg)
    : cfg_(normalize(cfg)), pool_(cfg_), scratch_(cfg_.shards) {
    const std::size_t shards = cfg_.shards;
    const std::size_t cap = pool_.capacity();
    const std::size_t base = cap / shards;
    const std::size_t rem = cap % shards;
    std::size_t begin = 0;
    ranges_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t len = base + (s < rem ? 1 : 0);
        ranges_.emplace_back(begin, begin + len);
        begin += len;
    }
    for (ShardScratch& s : scratch_) pool_.init_scratch(s);
    if (cfg_.telemetry.enabled) {
        slabs_.resize(shards);
        for (std::size_t s = 0; s < shards; ++s) {
            scratch_[s].telemetry = &slabs_[s];
        }
        registry_ = std::make_unique<obs::telemetry::SnapshotRegistry>(
            cfg_.telemetry.epoch_steps);
    }
    if (shards > 1) workers_ = std::make_unique<exp::ThreadPool>(shards);
}

void ShardedEngine::step() {
    if (!workers_) {
        pool_.run_window_range(ranges_[0].first, ranges_[0].second, scratch_[0]);
    } else {
        for (std::size_t s = 0; s < scratch_.size(); ++s) {
            workers_->submit([this, s] {
                pool_.run_window_range(ranges_[s].first, ranges_[s].second,
                                       scratch_[s]);
            });
        }
        workers_->wait_idle();
    }
    ++steps_;
    // Epoch boundary: every shard is idle here, so the fold reads the
    // slabs race-free and in shard index order.
    if (registry_ && registry_->due(steps_)) {
        registry_->capture(steps_, slabs_.data(), slabs_.size());
    }
}

void ShardedEngine::run(std::size_t windows) {
    for (std::size_t w = 0; w < windows; ++w) step();
}

namespace {

void append_histogram(exp::JsonWriter& json, const sim::Histogram& h) {
    json.begin_object();
    json.key("total").value(static_cast<std::uint64_t>(h.total()));
    json.key("bins").begin_object();
    for (const auto& [value, count] : h.bins()) {
        json.key(std::to_string(value)).value(static_cast<std::uint64_t>(count));
    }
    json.end_object();
    json.end_object();
}

}  // namespace

void append_summary(exp::JsonWriter& json, const EngineSummary& s) {
    json.begin_object();
    json.key("sessions").value(static_cast<std::uint64_t>(s.sessions));
    json.key("active_sessions").value(static_cast<std::uint64_t>(s.active_sessions));
    json.key("windows").value(s.windows);
    json.key("slots").value(s.slots);
    json.key("unit_losses").value(s.unit_losses);
    json.key("idle_windows").value(s.idle_windows);
    json.key("alf").value(s.alf);
    json.key("clf_mean").value(s.clf_mean);
    json.key("clf_dev").value(s.clf_dev);
    json.key("clf_max").value(s.clf_max);
    json.key("clf_p50").value(static_cast<std::int64_t>(s.clf_histogram.quantile(0.50)));
    json.key("clf_p90").value(static_cast<std::int64_t>(s.clf_histogram.quantile(0.90)));
    json.key("clf_p99").value(static_cast<std::int64_t>(s.clf_histogram.quantile(0.99)));
    json.key("clf_p999").value(static_cast<std::int64_t>(s.clf_histogram.quantile(0.999)));
    json.key("acks_delivered").value(s.acks_delivered);
    json.key("acks_lost").value(s.acks_lost);
    json.key("sessions_spawned").value(s.sessions_spawned);
    json.key("sessions_completed").value(s.sessions_completed);
    json.key("governor_windows").begin_array();
    for (std::size_t st = 0; st < 4; ++st) json.value(s.governor_windows[st]);
    json.end_array();
    json.key("governor_transitions").value(s.governor_transitions);
    if (s.fec) {
        json.key("fec_repair_packets").value(s.fec_repair_packets);
        json.key("fec_windows_recovered").value(s.fec_windows_recovered);
        json.key("fec_windows_unrecovered").value(s.fec_windows_unrecovered);
    }
    if (s.nack) {
        json.key("nack_requests_sent").value(s.nack_requests_sent);
        json.key("nack_requests_lost").value(s.nack_requests_lost);
        json.key("nack_repair_packets").value(s.nack_repair_packets);
        json.key("nack_credits_expired").value(s.nack_credits_expired);
        json.key("nack_windows_proactive").value(s.nack_windows_proactive);
    }
    json.key("clf_histogram");
    append_histogram(json, s.clf_histogram);
    json.key("bound_histogram");
    append_histogram(json, s.bound_histogram);
    json.key("metrics");
    obs::append_metrics(json, s.metrics);
    json.end_object();
}

std::string summary_json(const EngineSummary& s) {
    exp::JsonWriter json;
    append_summary(json, s);
    return json.str();
}

}  // namespace espread::engine
