// Permutations over a transmission window.
//
// A Permutation describes the order in which a window of n LDUs (frames) is
// put on the wire: slot s of the transmission carries the LDU whose playback
// index is perm[s].  The receiver applies the inverse to restore playback
// order.  This is the object the paper's calculatePermutation(n, b)
// algorithm produces (its "k-Cyclic Permutation Order").
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace espread {

/// A bijection on {0, 1, ..., n-1}, stored as the image sequence.
///
/// Convention used throughout the library:
///   `at(slot) == original` — transmission slot `slot` carries the LDU with
///   playback (original) index `original`.
///
/// Class invariant: the stored sequence is a permutation of 0..n-1
/// (validated at construction; constructors throw std::invalid_argument on
/// malformed input).
class Permutation {
public:
    /// Empty permutation (size 0); useful as a default before assignment.
    Permutation() = default;

    /// Identity permutation of size n (in-order transmission).
    static Permutation identity(std::size_t n);

    /// Builds from an explicit image sequence; throws if not a bijection.
    explicit Permutation(std::vector<std::size_t> image);
    Permutation(std::initializer_list<std::size_t> image);

    [[nodiscard]] std::size_t size() const noexcept { return image_.size(); }

    /// Playback index carried in transmission slot `slot`.
    [[nodiscard]] std::size_t at(std::size_t slot) const {
        if (slot >= image_.size()) throw std::out_of_range("Permutation::at");
        return image_[slot];
    }
    [[nodiscard]] std::size_t operator[](std::size_t slot) const noexcept {
        return image_[slot];
    }

    [[nodiscard]] const std::vector<std::size_t>& image() const noexcept {
        return image_;
    }

    /// Inverse permutation: inverse()[original] == slot.
    [[nodiscard]] Permutation inverse() const;

    /// Composition: (this ∘ other)[i] == this[other[i]].  Sizes must match.
    [[nodiscard]] Permutation compose(const Permutation& other) const;

    [[nodiscard]] bool is_identity() const noexcept;

    bool operator==(const Permutation& rhs) const noexcept = default;

    /// Reorders `items` (playback order) into transmission order:
    /// result[slot] = items[perm[slot]].
    template <typename T>
    [[nodiscard]] std::vector<T> apply(const std::vector<T>& items) const {
        require_size(items.size());
        std::vector<T> out;
        out.reserve(items.size());
        for (std::size_t slot = 0; slot < image_.size(); ++slot) {
            out.push_back(items[image_[slot]]);
        }
        return out;
    }

    /// Move-aware apply(): each source element is consumed exactly once
    /// (the image is a bijection), so expensive payloads are moved rather
    /// than copied into transmission order.
    template <typename T>
    [[nodiscard]] std::vector<T> apply(std::vector<T>&& items) const {
        require_size(items.size());
        std::vector<T> out;
        out.reserve(items.size());
        for (std::size_t slot = 0; slot < image_.size(); ++slot) {
            out.push_back(std::move(items[image_[slot]]));
        }
        return out;
    }

    /// Restores playback order from transmission order:
    /// result[perm[slot]] = items[slot].  Inverse of apply().
    template <typename T>
    [[nodiscard]] std::vector<T> unapply(const std::vector<T>& items) const {
        require_size(items.size());
        std::vector<T> out(items.size());
        for (std::size_t slot = 0; slot < image_.size(); ++slot) {
            out[image_[slot]] = items[slot];
        }
        return out;
    }

    /// apply() into a caller-owned scratch buffer: no allocation once `out`
    /// has reached capacity.  `out` must not alias `items`.
    template <typename T>
    void apply_into(const std::vector<T>& items, std::vector<T>& out) const {
        require_size(items.size());
        out.resize(items.size());
        for (std::size_t slot = 0; slot < image_.size(); ++slot) {
            out[slot] = items[image_[slot]];
        }
    }

    /// unapply() into a caller-owned scratch buffer: no allocation once
    /// `out` has reached capacity.  `out` must not alias `items`.
    template <typename T>
    void unapply_into(const std::vector<T>& items, std::vector<T>& out) const {
        require_size(items.size());
        out.resize(items.size());
        for (std::size_t slot = 0; slot < image_.size(); ++slot) {
            out[image_[slot]] = items[slot];
        }
    }

    /// Batch entry point for bit-packed masks (multi-session engine hot
    /// path): every set bit `slot` of `src` sets bit `image()[slot]` in
    /// `dst` — transmission-order loss bits scattered into playback order,
    /// the bitwise analogue of unapply() for a set-bit predicate.  Both
    /// arrays hold `nwords` words covering size() bits; bits past size()
    /// must be clear in `src`; `dst` is OR-accumulated (clear it first for
    /// a plain permute).  No allocation, no aliasing allowed.
    void scatter_set_bits(const std::uint64_t* src, std::uint64_t* dst,
                          std::size_t nwords) const noexcept {
        for (std::size_t wi = 0; wi < nwords; ++wi) {
            std::uint64_t w = src[wi];
            while (w != 0) {
                const unsigned bit = static_cast<unsigned>(std::countr_zero(w));
                w &= w - 1;  // clear lowest set bit
                const std::size_t original = image_[wi * 64 + bit];
                dst[original >> 6] |= std::uint64_t{1} << (original & 63);
            }
        }
    }

    /// Human-readable 1-based rendering, e.g. "01 06 11 16 ..." as printed
    /// in the paper's Table 1.
    std::string to_string_one_based() const;

private:
    void validate() const;
    void require_size(std::size_t n) const;

    std::vector<std::size_t> image_;
};

}  // namespace espread
