#include "core/metrics.hpp"

#include <algorithm>

namespace espread {

std::vector<std::size_t> loss_runs(const LossMask& delivered) {
    std::vector<std::size_t> runs;
    std::size_t current = 0;
    for (const bool ok : delivered) {
        if (!ok) {
            ++current;
        } else if (current > 0) {
            runs.push_back(current);
            current = 0;
        }
    }
    if (current > 0) runs.push_back(current);
    return runs;
}

std::size_t consecutive_loss(const LossMask& delivered) {
    std::size_t best = 0;
    std::size_t current = 0;
    for (const bool ok : delivered) {
        if (!ok) {
            best = std::max(best, ++current);
        } else {
            current = 0;
        }
    }
    return best;
}

std::size_t aggregate_loss_count(const LossMask& delivered) {
    return static_cast<std::size_t>(
        std::count(delivered.begin(), delivered.end(), false));
}

ContinuityReport measure_continuity(const LossMask& delivered) {
    ContinuityReport r;
    r.slots = delivered.size();
    r.unit_losses = aggregate_loss_count(delivered);
    r.clf = consecutive_loss(delivered);
    r.alf = r.slots == 0 ? 0.0
                         : static_cast<double>(r.unit_losses) / static_cast<double>(r.slots);
    return r;
}

void ContinuityMeter::add_window(const LossMask& delivered) {
    const ContinuityReport w = measure_continuity(delivered);
    clf_series_.add(static_cast<double>(clf_series_.size()), static_cast<double>(w.clf));
    total_.slots += w.slots;
    total_.unit_losses += w.unit_losses;
    total_.clf = std::max(total_.clf, w.clf);
    total_.alf = total_.slots == 0
                     ? 0.0
                     : static_cast<double>(total_.unit_losses) / static_cast<double>(total_.slots);
}

}  // namespace espread
