#include "core/metrics.hpp"

#include <algorithm>
#include <bit>

namespace espread {

namespace {

/// Number of 64-bit words covering n slots.
constexpr std::size_t words_for(std::size_t n) noexcept { return (n + 63) / 64; }

/// Word `wi` of `mask` with delivery bits INVERTED (set bit = loss) and the
/// tail bits past size() cleared, so loss scans can treat every word
/// uniformly.
std::uint64_t lost_word(const BitMask& mask, std::size_t wi) noexcept {
    std::uint64_t w = ~mask.words()[wi];
    const std::size_t tail = mask.size() - wi * 64;
    if (tail < 64) w &= (std::uint64_t{1} << tail) - 1;
    return w;
}

}  // namespace

BitMask::BitMask(std::size_t n, bool delivered)
    : words_(words_for(n), delivered ? ~std::uint64_t{0} : 0), size_(n) {
    if (!delivered && n % 64 != 0) {
        // Tail bits past size() stay set (delivered) by invariant.
        words_.back() = ~((std::uint64_t{1} << (n % 64)) - 1);
    }
}

BitMask BitMask::from_mask(const LossMask& mask) {
    BitMask out(mask.size(), true);
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (!mask[i]) out.set(i, false);
    }
    return out;
}

LossMask BitMask::to_mask() const {
    LossMask out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = test(i);
    return out;
}

std::vector<std::size_t> loss_runs(const LossMask& delivered) {
    std::vector<std::size_t> runs;
    std::size_t current = 0;
    for (const bool ok : delivered) {
        if (!ok) {
            ++current;
        } else if (current > 0) {
            runs.push_back(current);
            current = 0;
        }
    }
    if (current > 0) runs.push_back(current);
    return runs;
}

std::size_t consecutive_loss(const LossMask& delivered) {
    std::size_t best = 0;
    std::size_t current = 0;
    for (const bool ok : delivered) {
        if (!ok) {
            best = std::max(best, ++current);
        } else {
            current = 0;
        }
    }
    return best;
}

std::size_t aggregate_loss_count(const LossMask& delivered) {
    return static_cast<std::size_t>(
        std::count(delivered.begin(), delivered.end(), false));
}

std::vector<std::size_t> loss_runs(const BitMask& delivered) {
    std::vector<std::size_t> runs;
    std::size_t current = 0;  // run carried in from the previous word
    const std::size_t nwords = delivered.words().size();
    for (std::size_t wi = 0; wi < nwords; ++wi) {
        std::uint64_t w = lost_word(delivered, wi);
        if (w == 0) {
            if (current > 0) runs.push_back(current);
            current = 0;
            continue;
        }
        if (w == ~std::uint64_t{0}) {
            current += 64;
            continue;
        }
        std::size_t consumed = 0;
        while (w != 0) {
            const unsigned z = static_cast<unsigned>(std::countr_zero(w));
            if (z > 0) {
                if (current > 0) runs.push_back(current);
                current = 0;
                w >>= z;
                consumed += z;
            }
            const unsigned o = static_cast<unsigned>(std::countr_one(w));
            current += o;
            consumed += o;
            // o < 64 here: the word is neither 0 nor all-ones, so every
            // run of ones inside it is bounded by a zero or the word top.
            w >>= o;
        }
        if (consumed < 64 && current > 0) {
            // The word's top bit is a delivered slot: the last run closed.
            runs.push_back(current);
            current = 0;
        }
    }
    if (current > 0) runs.push_back(current);
    return runs;
}

std::size_t consecutive_loss(const BitMask& delivered) {
    std::size_t best = 0;
    std::size_t current = 0;  // run carried in from the previous word
    const std::size_t nwords = delivered.words().size();
    for (std::size_t wi = 0; wi < nwords; ++wi) {
        const std::uint64_t w = lost_word(delivered, wi);
        if (w == 0) {
            best = std::max(best, current);
            current = 0;
            continue;
        }
        if (w == ~std::uint64_t{0}) {
            current += 64;
            continue;
        }
        // Close the carried run against the word's leading losses.
        const unsigned lead = static_cast<unsigned>(std::countr_one(w));
        best = std::max(best, current + lead);
        // Interior runs are fully contained in this word.
        std::uint64_t x = w >> lead;  // bit 0 is now a delivered slot
        while (x != 0) {
            x >>= std::countr_zero(x);
            const unsigned o = static_cast<unsigned>(std::countr_one(x));
            best = std::max<std::size_t>(best, o);
            x >>= o;  // o < 64: at least one zero was shifted out above
        }
        // A run touching the word top continues into the next word.
        current = static_cast<std::size_t>(std::countl_one(w));
    }
    return std::max(best, current);
}

std::size_t max_set_run(const std::uint64_t* words, std::size_t nwords) noexcept {
    std::size_t best = 0;
    std::size_t carry = 0;  // run continuing in from the previous word
    for (std::size_t wi = 0; wi < nwords; ++wi) {
        const std::uint64_t w = words[wi];
        if (w == 0) {
            best = std::max(best, carry);
            carry = 0;
            continue;
        }
        if (w == ~std::uint64_t{0}) {
            carry += 64;
            continue;
        }
        // Close the carried run against the word's leading set bits, scan
        // the interior runs (fully contained: the word is neither empty nor
        // full), then carry the run touching the word top into the next.
        const unsigned lead = static_cast<unsigned>(std::countr_one(w));
        best = std::max(best, carry + lead);
        std::uint64_t x = w >> lead;  // bit 0 is now clear
        while (x != 0) {
            x >>= std::countr_zero(x);
            const unsigned o = static_cast<unsigned>(std::countr_one(x));
            best = std::max<std::size_t>(best, o);
            x >>= o;  // o < 64: at least one zero was shifted out above
        }
        carry = static_cast<std::size_t>(std::countl_one(w));
    }
    return std::max(best, carry);
}

std::size_t count_set_bits(const std::uint64_t* words, std::size_t nwords) noexcept {
    std::size_t n = 0;
    for (std::size_t wi = 0; wi < nwords; ++wi) {
        n += static_cast<std::size_t>(std::popcount(words[wi]));
    }
    return n;
}

std::size_t aggregate_loss_count(const BitMask& delivered) {
    // Tail bits past size() are set by invariant, so every clear bit in the
    // backing words is a real loss.
    std::size_t delivered_bits = 0;
    for (const std::uint64_t w : delivered.words()) {
        delivered_bits += static_cast<std::size_t>(std::popcount(w));
    }
    return delivered.words().size() * 64 - delivered_bits;
}

namespace {

template <typename Mask>
ContinuityReport measure_continuity_impl(const Mask& delivered) {
    ContinuityReport r;
    r.slots = delivered.size();
    r.unit_losses = aggregate_loss_count(delivered);
    r.clf = consecutive_loss(delivered);
    r.alf = r.slots == 0 ? 0.0
                         : static_cast<double>(r.unit_losses) / static_cast<double>(r.slots);
    return r;
}

}  // namespace

ContinuityReport measure_continuity(const LossMask& delivered) {
    return measure_continuity_impl(delivered);
}

ContinuityReport measure_continuity(const BitMask& delivered) {
    return measure_continuity_impl(delivered);
}

void ContinuityMeter::accumulate(const ContinuityReport& w) {
    clf_series_.add(static_cast<double>(clf_series_.size()), static_cast<double>(w.clf));
    total_.slots += w.slots;
    total_.unit_losses += w.unit_losses;
    total_.clf = std::max(total_.clf, w.clf);
}

void ContinuityMeter::add_window(const LossMask& delivered) {
    accumulate(measure_continuity(delivered));
}

void ContinuityMeter::add_window(const BitMask& delivered) {
    accumulate(measure_continuity(delivered));
}

ContinuityReport ContinuityMeter::total() const noexcept {
    ContinuityReport r = total_;
    r.alf = r.slots == 0
                ? 0.0
                : static_cast<double>(r.unit_losses) / static_cast<double>(r.slots);
    return r;
}

}  // namespace espread
