// Content-based continuity QoS metrics (paper §2.1, Fig. 1).
//
// A CM stream is a sequence of LDU playback slots; each slot either shows
// its ideal LDU (delivered) or suffers a unit loss (the LDU was lost, or a
// previous LDU had to be repeated).  Two metrics measure the deviation from
// the ideal stream:
//   * ALF — aggregate loss factor: fraction of slots with a unit loss;
//   * CLF — consecutive loss factor: the largest run of consecutive unit
//     losses.  Perceptual studies put the tolerable CLF at 2 frames for
//     video and 3 for audio; CLF is the quantity error spreading minimizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/stats.hpp"

namespace espread {

/// Per-slot delivery outcome in playback order: true = the ideal LDU played
/// in its slot, false = unit loss.
using LossMask = std::vector<bool>;

/// Bit-packed delivery mask (64 slots per word) with word-at-a-time metric
/// fast paths.  Same polarity as LossMask: a set bit means the slot's ideal
/// LDU was delivered; a clear bit is a unit loss.  Bits beyond size() are
/// kept set so loss scans never see phantom losses in the tail word.
class BitMask {
public:
    BitMask() = default;

    /// `n` slots, all initialized to `delivered`.
    explicit BitMask(std::size_t n, bool delivered = true);

    /// Packs a vector<bool> mask.
    static BitMask from_mask(const LossMask& mask);

    /// Unpacks into the vector<bool> representation.
    LossMask to_mask() const;

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// Delivery outcome of slot `i` (unchecked).
    bool test(std::size_t i) const noexcept {
        return (words_[i >> 6] >> (i & 63)) & 1u;
    }

    /// Sets slot `i` to `delivered` (unchecked).
    void set(std::size_t i, bool delivered) noexcept {
        const std::uint64_t bit = std::uint64_t{1} << (i & 63);
        if (delivered) {
            words_[i >> 6] |= bit;
        } else {
            words_[i >> 6] &= ~bit;
        }
    }

    /// Backing words, least-significant bit = lowest slot.  Tail bits past
    /// size() are set (delivered).
    const std::vector<std::uint64_t>& words() const noexcept { return words_; }

    bool operator==(const BitMask& rhs) const noexcept = default;

private:
    std::vector<std::uint64_t> words_;
    std::size_t size_ = 0;
};

/// Summary of one window (or one whole stream) of playback slots.
struct ContinuityReport {
    std::size_t slots = 0;       ///< total playback slots considered
    std::size_t unit_losses = 0; ///< number of slots with a unit loss
    std::size_t clf = 0;         ///< longest run of consecutive unit losses
    double alf = 0.0;            ///< unit_losses / slots (0 when slots == 0)
};

/// Lengths of each maximal run of consecutive losses, in order.
/// E.g. delivered-lost-lost-delivered-lost -> {2, 1}.
std::vector<std::size_t> loss_runs(const LossMask& delivered);

/// Longest run of consecutive losses (the CLF of the mask).
std::size_t consecutive_loss(const LossMask& delivered);

/// Number of unit losses in the mask.
std::size_t aggregate_loss_count(const LossMask& delivered);

/// Full continuity report for one mask.
ContinuityReport measure_continuity(const LossMask& delivered);

// Bit-packed fast paths: identical results to the LossMask versions above
// (property-tested against them), but scan 64 slots per word using
// popcount / countr_zero instead of one branch per slot.
std::vector<std::size_t> loss_runs(const BitMask& delivered);
std::size_t consecutive_loss(const BitMask& delivered);
std::size_t aggregate_loss_count(const BitMask& delivered);
ContinuityReport measure_continuity(const BitMask& delivered);

// Raw-word batch entry points for the multi-session engine (src/engine):
// the caller owns packed LOSS-polarity words (set bit = unit loss, the
// inverse of BitMask) with every bit past the mask's logical size clear.
// These run on caller arenas with no BitMask object and no allocation.

/// Longest run of set bits across `nwords` words treated as one contiguous
/// bit sequence (bit 0 of words[0] first).  Equals consecutive_loss() of
/// the corresponding delivery mask.
std::size_t max_set_run(const std::uint64_t* words, std::size_t nwords) noexcept;

/// Number of set bits across `nwords` words — aggregate_loss_count() of the
/// corresponding delivery mask.
std::size_t count_set_bits(const std::uint64_t* words, std::size_t nwords) noexcept;

/// Accumulates continuity over a sequence of buffer windows, tracking the
/// per-window CLF series the paper plots in Figure 8 plus its mean /
/// deviation rows.  Window boundaries do NOT merge loss runs: each window is
/// measured independently, matching the paper's per-buffer-window CLF.
class ContinuityMeter {
public:
    /// Records one buffer window worth of playback outcomes.
    void add_window(const LossMask& delivered);
    void add_window(const BitMask& delivered);

    std::size_t windows() const noexcept { return clf_series_.size(); }

    /// Per-window CLF values in arrival order.
    const sim::TimeSeries& clf_series() const noexcept { return clf_series_; }

    /// Mean / deviation of per-window CLF (the paper's "Mean 1.46, Dev 0.56").
    sim::RunningStats clf_stats() const { return clf_series_.y_stats(); }

    /// Continuity aggregated over all slots of all windows.  The ALF ratio
    /// is computed here, once, rather than re-divided on every add_window.
    ContinuityReport total() const noexcept;

private:
    void accumulate(const ContinuityReport& w);

    sim::TimeSeries clf_series_;
    ContinuityReport total_;  // alf field unused; derived lazily in total()
};

}  // namespace espread
