// Content-based continuity QoS metrics (paper §2.1, Fig. 1).
//
// A CM stream is a sequence of LDU playback slots; each slot either shows
// its ideal LDU (delivered) or suffers a unit loss (the LDU was lost, or a
// previous LDU had to be repeated).  Two metrics measure the deviation from
// the ideal stream:
//   * ALF — aggregate loss factor: fraction of slots with a unit loss;
//   * CLF — consecutive loss factor: the largest run of consecutive unit
//     losses.  Perceptual studies put the tolerable CLF at 2 frames for
//     video and 3 for audio; CLF is the quantity error spreading minimizes.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/stats.hpp"

namespace espread {

/// Per-slot delivery outcome in playback order: true = the ideal LDU played
/// in its slot, false = unit loss.
using LossMask = std::vector<bool>;

/// Summary of one window (or one whole stream) of playback slots.
struct ContinuityReport {
    std::size_t slots = 0;       ///< total playback slots considered
    std::size_t unit_losses = 0; ///< number of slots with a unit loss
    std::size_t clf = 0;         ///< longest run of consecutive unit losses
    double alf = 0.0;            ///< unit_losses / slots (0 when slots == 0)
};

/// Lengths of each maximal run of consecutive losses, in order.
/// E.g. delivered-lost-lost-delivered-lost -> {2, 1}.
std::vector<std::size_t> loss_runs(const LossMask& delivered);

/// Longest run of consecutive losses (the CLF of the mask).
std::size_t consecutive_loss(const LossMask& delivered);

/// Number of unit losses in the mask.
std::size_t aggregate_loss_count(const LossMask& delivered);

/// Full continuity report for one mask.
ContinuityReport measure_continuity(const LossMask& delivered);

/// Accumulates continuity over a sequence of buffer windows, tracking the
/// per-window CLF series the paper plots in Figure 8 plus its mean /
/// deviation rows.  Window boundaries do NOT merge loss runs: each window is
/// measured independently, matching the paper's per-buffer-window CLF.
class ContinuityMeter {
public:
    /// Records one buffer window worth of playback outcomes.
    void add_window(const LossMask& delivered);

    std::size_t windows() const noexcept { return clf_series_.size(); }

    /// Per-window CLF values in arrival order.
    const sim::TimeSeries& clf_series() const noexcept { return clf_series_; }

    /// Mean / deviation of per-window CLF (the paper's "Mean 1.46, Dev 0.56").
    sim::RunningStats clf_stats() const { return clf_series_.y_stats(); }

    /// Continuity aggregated over all slots of all windows.
    ContinuityReport total() const noexcept { return total_; }

private:
    sim::TimeSeries clf_series_;
    ContinuityReport total_;
};

}  // namespace espread
