#include "core/optimal.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/burst.hpp"

namespace espread {

namespace {

/// DFS state for the decision search.
struct Search {
    std::size_t n;
    std::size_t b;
    std::size_t target;
    std::vector<std::size_t> prefix;  // slots assigned so far
    std::vector<bool> used;           // playback indices consumed
    std::vector<std::size_t>* witness;  // filled with a solution if non-null

    /// Longest playback-order run among the trailing min(b, assigned) slots.
    /// When exactly b slots are trailing this is the CLF of a complete burst
    /// window; for shorter prefixes it is a lower bound on every burst that
    /// will cover them (losses only grow), so > target prunes soundly.
    std::size_t trailing_run() const {
        const std::size_t assigned = prefix.size();
        const std::size_t take = std::min(b, assigned);
        std::vector<bool> lost(n, false);
        for (std::size_t i = assigned - take; i < assigned; ++i) lost[prefix[i]] = true;
        std::size_t best = 0;
        std::size_t cur = 0;
        for (std::size_t v = 0; v < n; ++v) {
            if (lost[v]) {
                best = std::max(best, ++cur);
            } else {
                cur = 0;
            }
        }
        return best;
    }

    bool dfs() {
        if (prefix.size() == n) {
            if (witness != nullptr) *witness = prefix;
            return true;
        }
        for (std::size_t v = 0; v < n; ++v) {
            if (used[v]) continue;
            used[v] = true;
            prefix.push_back(v);
            const bool ok = trailing_run() <= target && dfs();
            prefix.pop_back();
            used[v] = false;
            if (ok) return true;
        }
        return false;
    }
};

/// Largest window the exponential search accepts; beyond it a negative
/// answer could take hours, so refuse loudly instead of hanging.
constexpr std::size_t kMaxSearchWindow = 14;

bool solve(std::size_t n, std::size_t b, std::size_t target,
           std::vector<std::size_t>* witness) {
    if (n > kMaxSearchWindow) {
        throw std::invalid_argument(
            "optimal search: window too large for exhaustive search (max 14)");
    }
    if (n == 0) return true;
    b = std::min(b, n);
    if (b == 0 || target >= b) {
        if (witness != nullptr) {
            witness->resize(n);
            for (std::size_t i = 0; i < n; ++i) (*witness)[i] = i;
        }
        return true;  // no burst can exceed its own length
    }
    Search s{n, b, target, {}, std::vector<bool>(n, false), witness};
    s.prefix.reserve(n);
    return s.dfs();
}

}  // namespace

bool clf_achievable(std::size_t n, std::size_t b, std::size_t target) {
    return solve(n, b, target, nullptr);
}

std::size_t optimal_clf(std::size_t n, std::size_t b) {
    if (n == 0 || b == 0) return 0;
    b = std::min(b, n);
    for (std::size_t t = lower_bound_clf(n, b); t < b; ++t) {
        if (solve(n, b, t, nullptr)) return t;
    }
    return b;  // the burst itself bounds the CLF
}

OptimalResult optimal_permutation(std::size_t n, std::size_t b) {
    if (n == 0) return OptimalResult{Permutation{std::vector<std::size_t>{}}, 0};
    const std::size_t t = optimal_clf(n, b);
    std::vector<std::size_t> image;
    if (!solve(n, std::min(b, n), t, &image)) {
        throw std::logic_error("optimal_permutation: decision/search mismatch");
    }
    return OptimalResult{Permutation{std::move(image)}, t};
}

}  // namespace espread
