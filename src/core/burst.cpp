#include "core/burst.hpp"

#include <algorithm>

namespace espread {

LossMask burst_loss_mask(const Permutation& perm, std::size_t start, std::size_t length) {
    LossMask delivered(perm.size(), true);
    const std::size_t end = std::min(perm.size(), start + length);
    for (std::size_t slot = std::min(start, perm.size()); slot < end; ++slot) {
        delivered[perm[slot]] = false;
    }
    return delivered;
}

std::size_t burst_clf(const Permutation& perm, std::size_t start, std::size_t length) {
    return consecutive_loss(burst_loss_mask(perm, start, length));
}

std::size_t worst_case_clf(const Permutation& perm, std::size_t max_burst) {
    const std::size_t n = perm.size();
    if (n == 0 || max_burst == 0) return 0;
    const std::size_t len = std::min(max_burst, n);
    std::size_t worst = 0;
    for (std::size_t start = 0; start + len <= n; ++start) {
        worst = std::max(worst, burst_clf(perm, start, len));
    }
    return worst;
}

std::size_t worst_case_clf_straddling(const Permutation& perm, std::size_t max_burst) {
    const std::size_t n = perm.size();
    if (n == 0 || max_burst == 0) return 0;
    const std::size_t len = std::min(max_burst, n);
    std::size_t worst = worst_case_clf(perm, max_burst);
    // Burst covers the last `tail` slots of window k and the first
    // len - tail slots of window k+1; each window is measured on its own.
    for (std::size_t tail = 1; tail < len; ++tail) {
        worst = std::max(worst, burst_clf(perm, n - tail, tail));
        worst = std::max(worst, burst_clf(perm, 0, len - tail));
    }
    return worst;
}

std::size_t lower_bound_clf(std::size_t n, std::size_t b) {
    if (b == 0 || n == 0) return 0;
    if (b >= n) return n;
    // b losses split into at most n - b + 1 runs separated by survivors.
    const std::size_t runs = n - b + 1;
    return (b + runs - 1) / runs;
}

}  // namespace espread
