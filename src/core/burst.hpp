// Burst analysis: exact worst-case CLF of a permutation (paper §2.2).
//
// The network model of the Bursty Error Reduction Problem: within a window
// of n transmitted LDUs, the channel drops at most one run of at most b
// consecutive *transmissions*.  These functions translate such a burst back
// into playback order through a permutation and measure the resulting CLF,
// including the exact worst case over all burst positions — the quantity
// Theorem 1 bounds and calculatePermutation() minimizes.
#pragma once

#include <cstddef>

#include "core/metrics.hpp"
#include "core/permutation.hpp"

namespace espread {

/// Playback-order delivery mask after a burst hits transmission slots
/// [start, start+length).  The burst is clipped to the window.
LossMask burst_loss_mask(const Permutation& perm, std::size_t start, std::size_t length);

/// CLF (in playback order) caused by the single burst [start, start+length).
std::size_t burst_clf(const Permutation& perm, std::size_t start, std::size_t length);

/// Exact worst-case CLF over every possible burst of length at most
/// `max_burst` within the window.  Because a longer burst's losses are a
/// superset of any shorter burst at the same start, only bursts of length
/// exactly min(max_burst, n) need to be examined.  O(n * b) time.
std::size_t worst_case_clf(const Permutation& perm, std::size_t max_burst);

/// As worst_case_clf, but also allows the burst to straddle the boundary
/// between two consecutive windows that both use `perm` (a suffix of one
/// window plus a prefix of the next).  Runs never join across the window
/// boundary (windows are played out and measured independently), but a
/// straddling burst hits fewer slots of each window.  Consequently this is
/// never larger than worst_case_clf; it is provided for the protocol-level
/// analysis where bursts are not aligned to windows.
std::size_t worst_case_clf_straddling(const Permutation& perm, std::size_t max_burst);

/// Packing lower bound on the CLF any transmission order can guarantee
/// against one burst of length b in a window of n (paper Theorem 1 regime
/// structure): any b-element subset of n playback slots has a run of at
/// least ceil(b / (n - b + 1)).  Returns 0 for b == 0 and n for b >= n.
std::size_t lower_bound_clf(std::size_t n, std::size_t b);

}  // namespace espread
