// calculatePermutation — the paper's k-Cyclic Permutation Order generator
// (paper §2.3 and appendix; Theorem 1).
//
// Given a sender buffer of n LDUs and an upper bound b on the size of a
// bursty loss within that window, produce the transmission order from the
// cyclic/residue-stride family that minimizes the exact worst-case CLF.
// The returned CLF is computed exactly (core/burst.hpp), so the generator
// is self-verifying: the guarantee it reports is the guarantee it delivers.
//
// Regime structure reproduced from Theorem 1 (statement reconstructed from
// the OCR; validated against exhaustive search in the test suite):
//   * CLF == 1   whenever b*b <= n  (stride b keeps lost LDUs >= b apart),
//   * CLF == n   when b >= n        (the whole window can be lost),
//   * in between, CLF grows roughly like ceil(b / floor(n/b)).
#pragma once

#include <cstddef>
#include <vector>

#include "core/permutation.hpp"

namespace espread {

/// How a CpoResult's permutation was constructed.
enum class CpoKind {
    kIdentity,      ///< in-order transmission (only when it is already optimal)
    kCyclicStride,  ///< cyclic AP: slot i -> (i * stride) mod n (gcd(stride,n)==1)
    kResidueClass,  ///< residue classes 0..stride-1 concatenated
};

/// Output of calculate_permutation: the order plus its proven guarantee.
struct CpoResult {
    Permutation perm;   ///< transmission order (slot -> playback index)
    std::size_t clf;    ///< exact worst-case CLF under any burst <= b
    std::size_t stride; ///< stride parameter of the winning construction
    CpoKind kind;       ///< which construction family won
};

/// The paper's calculatePermutation(n, b): best transmission order for a
/// window of n LDUs under a bursty-loss bound of b.
///
/// For n <= `exhaustive_stride_limit` every stride in [2, n-1] of both
/// construction families is evaluated exactly; above the limit a curated
/// candidate set (strides near b, sqrt(n) and the divisors of the
/// class-count) is used — protocol windows (<= a few hundred frames) always
/// take the exhaustive path.  b == 0 or n <= 1 returns the identity.
/// b is clamped to n.
CpoResult calculate_permutation(std::size_t n, std::size_t b,
                                std::size_t exhaustive_stride_limit = 256);

/// CLF guaranteed by calculate_permutation(n, b) — the achievable bound of
/// Theorem 1 for the cyclic-permutation family.
std::size_t cpo_clf(std::size_t n, std::size_t b);

/// Smallest window size n >= max(b, 1) whose k-CPO guarantees CLF <= k
/// against bursts of size b — the paper's buffer-requirement/user-quality
/// tradeoff ("given the user's maximum acceptable CLF k, how much sender
/// buffer is needed?").  Searches upward from n = b; `max_n` bounds the
/// search and 0 is returned if no window up to max_n suffices (only
/// possible when k == 0 and b > 0).
std::size_t window_for_clf(std::size_t b, std::size_t k, std::size_t max_n = 1 << 14);

/// The stride candidates calculate_permutation would evaluate for (n, b).
/// Exposed for benchmarks/tests that want to inspect the search space.
std::vector<std::size_t> cpo_candidate_strides(std::size_t n, std::size_t b,
                                               std::size_t exhaustive_stride_limit = 256);

}  // namespace espread
