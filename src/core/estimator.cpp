#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace espread {

std::size_t max_transmission_burst(const LossMask& received_in_tx_order) {
    return consecutive_loss(received_in_tx_order);
}

BurstEstimator::BurstEstimator(std::size_t window, double alpha)
    : window_(window),
      alpha_(alpha),
      estimate_(static_cast<double>(window) / 2.0) {
    if (window == 0) throw std::invalid_argument("BurstEstimator: window must be positive");
    if (alpha < 0.0 || alpha > 1.0) {
        throw std::invalid_argument("BurstEstimator: alpha must be in [0, 1]");
    }
}

void BurstEstimator::update(std::size_t observed_max_burst) {
    const std::size_t clamped = std::min(observed_max_burst, window_);
    const double obs = static_cast<double>(clamped);
    const double old_estimate = estimate_;
    estimate_ = alpha_ * obs + (1.0 - alpha_) * estimate_;
    ++observations_;
    if (observer_) observer_(clamped, old_estimate, estimate_);
}

std::size_t BurstEstimator::guarded_update(std::size_t observed_max_burst,
                                           std::size_t max_step) {
    const std::size_t b = bound();
    const std::size_t lo = b > max_step ? b - max_step : 0;
    const std::size_t hi = b + max_step;  // update() re-clamps to the window
    const std::size_t guarded =
        std::clamp(std::min(observed_max_burst, window_), lo, hi);
    // The estimate moves between its old value and the guarded observation,
    // both of which map to bounds within max_step of b, so bound() cannot
    // move further than that in one step.
    update(guarded);
    return guarded;
}

void BurstEstimator::reset_to_prior() noexcept {
    estimate_ = static_cast<double>(window_) / 2.0;
}

void BurstEstimator::decay_toward_prior(double keep) noexcept {
    const double k = std::clamp(keep, 0.0, 1.0);
    const double prior = static_cast<double>(window_) / 2.0;
    estimate_ = prior + k * (estimate_ - prior);
}

SlidingMaxEstimator::SlidingMaxEstimator(std::size_t window, std::size_t history)
    : window_(window), history_(history) {
    if (window == 0) {
        throw std::invalid_argument("SlidingMaxEstimator: window must be positive");
    }
    if (history == 0) {
        throw std::invalid_argument("SlidingMaxEstimator: history must be positive");
    }
}

void SlidingMaxEstimator::update(std::size_t observed_max_burst) {
    const std::size_t obs = std::min(observed_max_burst, window_);
    if (recent_.size() < history_) {
        recent_.push_back(obs);
    } else {
        recent_[next_slot_] = obs;
    }
    next_slot_ = (next_slot_ + 1) % history_;
    ++observations_;
}

std::size_t SlidingMaxEstimator::bound() const noexcept {
    if (recent_.empty()) {
        return std::clamp<std::size_t>(window_ / 2, 1, window_);
    }
    std::size_t best = 0;
    for (const std::size_t v : recent_) best = std::max(best, v);
    return std::clamp<std::size_t>(best, 1, window_);
}

std::size_t BurstEstimator::bound_for(double estimate,
                                      std::size_t window) noexcept {
    // Tolerate floating-point dust from repeated averaging (an estimate of
    // 6 + 1e-11 must still round to 6, not 7).
    const double ceiled = std::ceil(estimate - 1e-9);
    const std::size_t b = ceiled <= 1.0 ? 1 : static_cast<std::size_t>(ceiled);
    return std::clamp<std::size_t>(b, 1, window);
}

std::size_t BurstEstimator::bound() const noexcept {
    return bound_for(estimate_, window_);
}

}  // namespace espread
