#include "core/permutation.hpp"

#include <cstdio>
#include <numeric>
#include <utility>

namespace espread {

Permutation Permutation::identity(std::size_t n) {
    std::vector<std::size_t> image(n);
    std::iota(image.begin(), image.end(), std::size_t{0});
    return Permutation{std::move(image)};
}

Permutation::Permutation(std::vector<std::size_t> image) : image_(std::move(image)) {
    validate();
}

Permutation::Permutation(std::initializer_list<std::size_t> image)
    : image_(image) {
    validate();
}

void Permutation::validate() const {
    std::vector<bool> seen(image_.size(), false);
    for (const std::size_t v : image_) {
        if (v >= image_.size() || seen[v]) {
            throw std::invalid_argument("Permutation: image is not a bijection on 0..n-1");
        }
        seen[v] = true;
    }
}

void Permutation::require_size(std::size_t n) const {
    if (n != image_.size()) {
        throw std::invalid_argument("Permutation: size mismatch with argument");
    }
}

Permutation Permutation::inverse() const {
    std::vector<std::size_t> inv(image_.size());
    for (std::size_t slot = 0; slot < image_.size(); ++slot) inv[image_[slot]] = slot;
    return Permutation{std::move(inv)};
}

Permutation Permutation::compose(const Permutation& other) const {
    require_size(other.size());
    std::vector<std::size_t> out(image_.size());
    for (std::size_t i = 0; i < image_.size(); ++i) out[i] = image_[other.image_[i]];
    return Permutation{std::move(out)};
}

bool Permutation::is_identity() const noexcept {
    for (std::size_t i = 0; i < image_.size(); ++i) {
        if (image_[i] != i) return false;
    }
    return true;
}

std::string Permutation::to_string_one_based() const {
    std::string out;
    char buf[16];
    for (std::size_t i = 0; i < image_.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%02zu", image_[i] + 1);
        if (i > 0) out += ' ';
        out += buf;
    }
    return out;
}

}  // namespace espread
