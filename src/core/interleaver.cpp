#include "core/interleaver.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace espread {

Permutation block_interleaver(std::size_t rows, std::size_t cols) {
    if (rows == 0 || cols == 0) {
        throw std::invalid_argument("block_interleaver: rows and cols must be positive");
    }
    std::vector<std::size_t> image;
    image.reserve(rows * cols);
    for (std::size_t c = 0; c < cols; ++c) {
        for (std::size_t r = 0; r < rows; ++r) {
            image.push_back(r * cols + c);
        }
    }
    return Permutation{std::move(image)};
}

Permutation ibo_order(std::size_t n) {
    if (n == 0) return Permutation{std::vector<std::size_t>{}};
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < n) ++bits;
    const std::size_t m = std::size_t{1} << bits;
    std::vector<std::size_t> image;
    image.reserve(n);
    for (std::size_t i = 0; i < m; ++i) {
        std::size_t rev = 0;
        for (std::size_t bit = 0; bit < bits; ++bit) {
            if (i & (std::size_t{1} << bit)) rev |= std::size_t{1} << (bits - 1 - bit);
        }
        if (rev < n) image.push_back(rev);
    }
    return Permutation{std::move(image)};
}

Permutation random_order(std::size_t n, sim::Rng& rng) {
    std::vector<std::size_t> image(n);
    std::iota(image.begin(), image.end(), std::size_t{0});
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = rng.uniform_int(0, i - 1);
        std::swap(image[i - 1], image[j]);
    }
    return Permutation{std::move(image)};
}

Permutation folded_dyadic_order(std::size_t n) {
    if (n == 0) return Permutation{std::vector<std::size_t>{}};
    // Level-order midpoint enumeration of [0, n): each emitted value bisects
    // one of the largest remaining gaps.
    std::vector<std::size_t> pillars;
    pillars.reserve(n);
    std::vector<std::pair<std::size_t, std::size_t>> queue{{0, n}};  // [lo, hi)
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const auto [lo, hi] = queue[head];
        if (lo >= hi) continue;
        const std::size_t mid = lo + (hi - lo) / 2;
        pillars.push_back(mid);
        queue.emplace_back(lo, mid);
        queue.emplace_back(mid + 1, hi);
    }
    // Fold: best pillars go to the ends of the wire, alternating, so both
    // prefixes and suffixes of the transmission are pillar sets.
    std::vector<std::size_t> image(n);
    std::size_t front = 0;
    std::size_t back = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 2 == 0) {
            image[front++] = pillars[i];
        } else {
            image[back--] = pillars[i];
        }
    }
    return Permutation{std::move(image)};
}

Permutation cyclic_stride_order(std::size_t n, std::size_t stride, std::size_t offset) {
    if (n == 0) return Permutation{std::vector<std::size_t>{}};
    if (stride == 0 || std::gcd(stride, n) != 1) {
        throw std::invalid_argument("cyclic_stride_order: stride must be coprime with n");
    }
    std::vector<std::size_t> image;
    image.reserve(n);
    std::size_t v = offset % n;
    for (std::size_t i = 0; i < n; ++i) {
        image.push_back(v);
        v += stride;
        if (v >= n) v -= n;
    }
    return Permutation{std::move(image)};
}

Permutation residue_class_order(std::size_t n, std::size_t stride) {
    std::vector<std::size_t> natural(stride);
    std::iota(natural.begin(), natural.end(), std::size_t{0});
    return residue_class_order(n, stride, natural);
}

Permutation residue_class_order(std::size_t n, std::size_t stride,
                                const std::vector<std::size_t>& class_order) {
    if (n == 0) return Permutation{std::vector<std::size_t>{}};
    if (stride == 0 || stride > n) {
        throw std::invalid_argument("residue_class_order: stride must be in [1, n]");
    }
    if (class_order.size() != stride) {
        throw std::invalid_argument("residue_class_order: class_order size != stride");
    }
    std::vector<std::size_t> image;
    image.reserve(n);
    for (const std::size_t r : class_order) {
        if (r >= stride) {
            throw std::invalid_argument("residue_class_order: class id out of range");
        }
        for (std::size_t v = r; v < n; v += stride) image.push_back(v);
    }
    return Permutation{std::move(image)};  // ctor rejects repeated classes
}

}  // namespace espread
