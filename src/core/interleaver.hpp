// Classical transmission orderings used as baselines (paper §4.4, Table 2).
//
//  * block interleaver — the textbook rows/columns interleaver used by
//    codecs and FEC stacks;
//  * IBO (Inverse Binary Order) — the B-frame priority order shipped in the
//    Berkeley Continuous Media Toolkit, which the paper replaces with k-CPO;
//  * random order — a Monte-Carlo baseline;
//  * stride / residue-class orders — the building blocks of the paper's
//    cyclic permutation scheme (also exposed by core/cpo.hpp).
#pragma once

#include <cstddef>

#include "core/permutation.hpp"
#include "sim/rng.hpp"

namespace espread {

/// Block interleaver over n = rows*cols items: playback order fills a
/// rows x cols matrix row-major; transmission reads it column-major.
/// Throws std::invalid_argument when rows or cols is zero.
Permutation block_interleaver(std::size_t rows, std::size_t cols);

/// Inverse Binary Order of n items (Berkeley CMT's B-frame order, credited
/// in the CMT source to Daishi Harada).  For n a power of two this is the
/// bit-reversal permutation; for other n the bit-reversal sequence of the
/// next power of two is filtered to indices < n.  Reproduces the paper's
/// Table 2 row "01 05 03 07 02 06 04 08" for n = 8.
Permutation ibo_order(std::size_t n);

/// Uniformly random permutation (Fisher–Yates driven by `rng`).
Permutation random_order(std::size_t n, sim::Rng& rng);

/// Cyclic arithmetic-progression order: slot i carries playback index
/// (offset + i*stride) mod n.  Requires gcd(stride, n) == 1 so the map is a
/// bijection (throws otherwise).  The paper's Table 1 order for n = 17 is
/// cyclic_stride_order(17, 5, 0).
Permutation cyclic_stride_order(std::size_t n, std::size_t stride, std::size_t offset = 0);

/// Residue-class order: transmit all playback indices congruent to 0 mod
/// stride in increasing order, then 1 mod stride, etc.  Works for any
/// stride in [1, n]; stride 1 is the identity.  The paper's Table 2 k-CPO
/// row "01 04 07 02 05 08 03 06" is residue_class_order(8, 3).
Permutation residue_class_order(std::size_t n, std::size_t stride);

/// Folded dyadic order: pillar frames first, refined alternately from both
/// ends of the wire.  The dyadic (BFS-midpoint) sequence m, m/2, 3m/2, ...
/// enumerates playback positions so that every prefix is a set of
/// near-equally-spaced pillars; folding assigns those pillars alternately
/// to the front and the back of the transmission, so the survivors of any
/// single burst — always a wire prefix plus a wire suffix — form a pillar
/// set.  Provided as a priority-style comparison order (it is how one
/// would order frames for progressive refinement); note that for pure
/// worst-case single-burst CLF the residue family with a reversed class
/// order already dominates it, so calculate_permutation does not need it.
Permutation folded_dyadic_order(std::size_t n);

/// As residue_class_order, but visiting the residue classes in the given
/// order (`class_order` must be a permutation of 0..stride-1; throws
/// otherwise).  Choosing a class order whose consecutive classes are
/// non-adjacent residues removes playback adjacencies at class boundaries —
/// e.g. residue_class_order(4, 2, {1, 0}) = [1 3 0 2] tolerates any burst
/// of 2 with CLF 1, which the natural order cannot.
Permutation residue_class_order(std::size_t n, std::size_t stride,
                                const std::vector<std::size_t>& class_order);

}  // namespace espread
