#include "core/spreader.hpp"

#include <stdexcept>

namespace espread {

ErrorSpreader::ErrorSpreader(std::size_t window, double alpha)
    : estimator_(window, alpha),
      current_(nullptr),
      identity_(Permutation::identity(window)) {
    current_ = &identity_;
}

const CpoResult& ErrorSpreader::cached(std::size_t bound) {
    const auto it = cache_.find(bound);
    if (it != cache_.end()) return it->second;
    return cache_.emplace(bound, calculate_permutation(window(), bound)).first->second;
}

const Permutation& ErrorSpreader::begin_window() {
    const std::size_t bound = pinned_bound_ != 0 ? pinned_bound_ : estimator_.bound();
    const CpoResult& r = cached(bound);
    current_ = &r.perm;
    current_clf_ = r.clf;
    return *current_;
}

LossMask ErrorSpreader::unspread(const LossMask& received_tx_order) const {
    LossMask playback;
    unspread_into(received_tx_order, playback);
    return playback;
}

void ErrorSpreader::unspread_into(const LossMask& received_tx_order,
                                  LossMask& playback) const {
    if (received_tx_order.size() != window()) {
        throw std::invalid_argument("ErrorSpreader::unspread: mask size != window");
    }
    current_->unapply_into(received_tx_order, playback);
}

void ErrorSpreader::pin_bound(std::size_t b) noexcept {
    pinned_bound_ = b > window() ? window() : b;
}

}  // namespace espread
