// Windowed error-spreading codec for dependency-free streams (paper §4.2,
// "Note: For streams which have no dependency (like MJPEG), the above
// protocol simplifies to just a scrambling of frames and estimating loss
// rate for the whole window").
//
// The ErrorSpreader pairs a BurstEstimator with calculatePermutation: at
// the start of each buffer window the sender locks in a permutation derived
// from the current loss estimate; feedback (which may arrive one or more
// windows late) only influences later windows, exactly as in the paper's
// protocol timeline (Fig. 6).
#pragma once

#include <cstddef>
#include <map>

#include "core/cpo.hpp"
#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "core/permutation.hpp"

namespace espread {

/// Sender/receiver-side windowed permutation codec with adaptive burst bound.
///
/// Both endpoints construct an ErrorSpreader with the same window size and
/// alpha; the receiver mirrors the sender's permutation sequence as long as
/// it applies the same feedback in the same window order (the protocol layer
/// guarantees this by echoing the bound in the window header — see
/// src/protocol).
class ErrorSpreader {
public:
    /// Throws std::invalid_argument for window == 0 or alpha outside [0, 1].
    explicit ErrorSpreader(std::size_t window, double alpha = 0.5);

    std::size_t window() const noexcept { return estimator_.window(); }

    /// Burst bound that the *next* begin_window() will permute against.
    std::size_t current_bound() const noexcept { return estimator_.bound(); }

    /// Locks the permutation for the next buffer window (computed from the
    /// current estimate) and returns it.  Permutations are cached per bound,
    /// so repeated windows with a stable estimate are O(1).
    const Permutation& begin_window();

    /// Permutation of the window currently in flight (last begin_window()).
    /// Identity until the first begin_window().
    const Permutation& window_permutation() const noexcept { return *current_; }

    /// Guaranteed worst-case CLF of the current window's permutation under
    /// the bound it was built for.
    std::size_t window_clf_guarantee() const noexcept { return current_clf_; }

    /// Receiver side: converts a delivery mask in transmission order into a
    /// playback-order mask using the current window's permutation.
    /// Throws std::invalid_argument on size mismatch.
    [[nodiscard]] LossMask unspread(const LossMask& received_tx_order) const;

    /// unspread() into a caller-owned scratch buffer — the allocation-free
    /// fast path for per-window loops (Monte-Carlo trials unspread the same
    /// window size thousands of times).  `playback` must not alias the
    /// input.
    void unspread_into(const LossMask& received_tx_order,
                       LossMask& playback) const;

    /// Applies one window's feedback (max burst observed in transmission
    /// order) to the estimator; affects permutations of later windows only.
    void on_feedback(std::size_t observed_max_burst) noexcept {
        estimator_.update(observed_max_burst);
    }

    /// Forces the bound used for subsequent windows (used by the receiver to
    /// mirror a sender-announced bound, and by ablation benchmarks to freeze
    /// adaptation).  Pass through begin_window() afterwards as usual.
    void pin_bound(std::size_t b) noexcept;

    const BurstEstimator& estimator() const noexcept { return estimator_; }

private:
    const CpoResult& cached(std::size_t bound);

    BurstEstimator estimator_;
    std::map<std::size_t, CpoResult> cache_;  // bound -> permutation
    const Permutation* current_;              // points into cache_ or identity_
    std::size_t current_clf_ = 0;
    Permutation identity_;
    std::size_t pinned_bound_ = 0;  // 0 = adaptive
};

}  // namespace espread
