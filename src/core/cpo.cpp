#include "core/cpo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/burst.hpp"
#include "core/interleaver.hpp"

namespace espread {

namespace {

/// Adds `g` to `out` if it is a usable stride for a window of n.
void add_candidate(std::set<std::size_t>& out, std::size_t g, std::size_t n) {
    if (g >= 2 && g <= n - 1) out.insert(g);
}

/// Class-visit orders evaluated for the residue-class family.  Besides the
/// natural order, orders whose consecutive classes are non-adjacent
/// residues remove playback adjacencies at class boundaries.
std::vector<std::vector<std::size_t>> class_orders(std::size_t stride) {
    std::vector<std::size_t> natural(stride);
    std::iota(natural.begin(), natural.end(), std::size_t{0});

    std::vector<std::size_t> reversed(natural.rbegin(), natural.rend());

    std::vector<std::size_t> evens_then_odds;
    for (std::size_t r = 0; r < stride; r += 2) evens_then_odds.push_back(r);
    for (std::size_t r = 1; r < stride; r += 2) evens_then_odds.push_back(r);

    std::vector<std::size_t> odds_then_evens;
    for (std::size_t r = 1; r < stride; r += 2) odds_then_evens.push_back(r);
    for (std::size_t r = 0; r < stride; r += 2) odds_then_evens.push_back(r);

    std::vector<std::vector<std::size_t>> orders{std::move(natural)};
    for (auto* extra : {&reversed, &evens_then_odds, &odds_then_evens}) {
        if (*extra != orders.front()) orders.push_back(std::move(*extra));
    }
    return orders;
}

}  // namespace

std::vector<std::size_t> cpo_candidate_strides(std::size_t n, std::size_t b,
                                               std::size_t exhaustive_stride_limit) {
    std::set<std::size_t> cands;
    if (n < 3) return {};
    if (n <= exhaustive_stride_limit) {
        for (std::size_t g = 2; g <= n - 1; ++g) cands.insert(g);
        return {cands.begin(), cands.end()};
    }
    const std::size_t root = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    for (std::size_t d = 0; d <= 2; ++d) {
        add_candidate(cands, b > d ? b - d : 2, n);
        add_candidate(cands, b + d, n);
        add_candidate(cands, root > d ? root - d : 2, n);
        add_candidate(cands, root + d, n);
    }
    // Strides that split the window into k near-equal residue classes.
    const std::size_t max_classes = std::min<std::size_t>(b + 2, 64);
    for (std::size_t k = 1; k <= max_classes; ++k) {
        add_candidate(cands, (n + k - 1) / k, n);
        add_candidate(cands, n / k, n);
    }
    return {cands.begin(), cands.end()};
}

CpoResult calculate_permutation(std::size_t n, std::size_t b,
                                std::size_t exhaustive_stride_limit) {
    b = std::min(b, n);
    CpoResult best{Permutation::identity(n), std::min(b, n), 1, CpoKind::kIdentity};
    if (n <= 2 || b == 0 || b >= n) return best;

    best.clf = worst_case_clf(best.perm, b);  // == b for the identity
    const std::size_t floor_bound = lower_bound_clf(n, b);

    for (const std::size_t g : cpo_candidate_strides(n, b, exhaustive_stride_limit)) {
        if (std::gcd(g, n) == 1) {
            const Permutation p = cyclic_stride_order(n, g);
            const std::size_t clf = worst_case_clf(p, b);
            if (clf < best.clf) best = CpoResult{p, clf, g, CpoKind::kCyclicStride};
        }
        for (const auto& order : class_orders(g)) {
            const Permutation p = residue_class_order(n, g, order);
            const std::size_t clf = worst_case_clf(p, b);
            if (clf < best.clf) best = CpoResult{p, clf, g, CpoKind::kResidueClass};
            if (best.clf <= floor_bound) break;
        }
        if (best.clf <= floor_bound) break;  // cannot do better than the packing bound
    }
    return best;
}

std::size_t cpo_clf(std::size_t n, std::size_t b) {
    return calculate_permutation(n, b).clf;
}

std::size_t window_for_clf(std::size_t b, std::size_t k, std::size_t max_n) {
    if (b == 0) return 1;
    if (k == 0) return 0;  // any lost LDU already yields CLF >= 1
    if (k >= b) return b;  // even total loss of a b-window is acceptable
    for (std::size_t n = b; n <= max_n; ++n) {
        if (cpo_clf(n, b) <= k) return n;
    }
    return 0;
}

}  // namespace espread
