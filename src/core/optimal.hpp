// Exact optimal permutations by branch-and-bound (ground truth for small n).
//
// Theorem 1's achievable bound concerns the cyclic-permutation family; this
// module computes the true optimum over ALL permutations, which the test
// suite uses to validate the k-CPO construction.  It also demonstrates the
// simultaneity gap: a single order must spread every burst position at
// once, so the optimum can exceed the per-burst packing bound
// (e.g. n = 5, b = 4: packing bound 2, true optimum 3).
//
// Exponential-time search: all three entry points throw
// std::invalid_argument for n > 14 rather than run for hours.
#pragma once

#include <cstddef>
#include <optional>

#include "core/permutation.hpp"

namespace espread {

/// An optimal transmission order and its exact worst-case CLF.
struct OptimalResult {
    Permutation perm;
    std::size_t clf;
};

/// True whether some permutation of n keeps worst-case CLF <= target under
/// every burst of length <= b.  Branch-and-bound over prefixes; prunes any
/// prefix whose trailing <= b slots already contain a playback run > target.
bool clf_achievable(std::size_t n, std::size_t b, std::size_t target);

/// Minimum achievable worst-case CLF over all permutations of n against
/// bursts of length <= b.
std::size_t optimal_clf(std::size_t n, std::size_t b);

/// An optimal permutation witnessing optimal_clf(n, b).
OptimalResult optimal_permutation(std::size_t n, std::size_t b);

}  // namespace espread
