// Adaptive bursty-loss estimation (paper §4.2, Eq. 1).
//
// The client measures, per buffer window, the largest run of consecutive
// losses in *transmission* order and reports it in its ACK.  The server
// smooths these observations with an exponential average
//
//     b_hat[k+1] = alpha * observed[k] + (1 - alpha) * b_hat[k]
//
// with alpha = 1/2 ("we consider the current network loss and the average
// past network loss to be equally important") and uses ceil(b_hat), clamped
// to [1, window], as the b parameter of calculatePermutation for the next
// window.  Before any feedback arrives the server assumes the average case
// b = window / 2.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/metrics.hpp"

namespace espread {

/// Largest run of consecutive losses in a transmission-order delivery mask —
/// the per-window observation the client feeds back to the server.
std::size_t max_transmission_burst(const LossMask& received_in_tx_order);

/// Exponential-average estimator of the bursty-loss bound b.
class BurstEstimator {
public:
    /// `window` is the LDU window size n (bounds the estimate);
    /// `alpha` is the exponential-averaging weight of the newest sample.
    /// The endpoints are exact, not merely limits: alpha == 0 freezes the
    /// estimate at the prior window / 2 forever (observations are counted
    /// but never move it), and alpha == 1 is pure tracking — the estimate
    /// equals the latest clamped observation with no memory of the past.
    /// Throws std::invalid_argument for window == 0 or alpha outside [0, 1].
    explicit BurstEstimator(std::size_t window, double alpha = 0.5);

    /// Called after each update() with the clamped observation and the
    /// estimate before/after the exponential-average step.  Observability
    /// hook: must not throw and must not call back into the estimator.
    using UpdateObserver = std::function<void(
        std::size_t observed, double old_estimate, double new_estimate)>;

    /// Incorporates one per-window observation of the max transmission
    /// burst.  Values larger than the window are clamped.
    void update(std::size_t observed_max_burst);

    /// Guarded Eq. 1 step: additionally clamps the observation into
    /// [bound() - max_step, bound() + max_step] before updating, so one
    /// spiked (or corrupted) observation can move bound() by at most
    /// `max_step`.  max_step == 0 degenerates to a frozen bound; the
    /// estimate still converges because later honest observations keep
    /// pulling it within the widening clamp.  Returns the observation
    /// actually applied (after both clamps).  Fires the observer like
    /// update().
    std::size_t guarded_update(std::size_t observed_max_burst,
                               std::size_t max_step);

    /// Resets the estimate to the no-feedback prior window / 2 (the
    /// assumption the paper's server makes before any feedback arrives).
    /// The observation count is preserved; no observer callback fires.
    void reset_to_prior() noexcept;

    /// Moves the estimate toward the prior, retaining `keep` of its current
    /// distance: estimate = prior + keep * (estimate - prior).  `keep` is
    /// clamped to [0, 1]; keep == 1 is a no-op, keep == 0 equals
    /// reset_to_prior().  Applied once per missed feedback window this
    /// yields an exponential approach to the prior.  No observer callback.
    void decay_toward_prior(double keep) noexcept;

    /// Registers an observer of Eq. 1 steps (empty function detaches).
    void set_observer(UpdateObserver observer) { observer_ = std::move(observer); }

    /// Smoothed estimate (real-valued).
    double estimate() const noexcept { return estimate_; }

    /// Integer bound handed to calculatePermutation: ceil(estimate),
    /// clamped to [1, window].
    std::size_t bound() const noexcept;

    /// The bound a given real-valued estimate maps to (the ceil-and-clamp
    /// rule bound() applies), exposed so observers can translate estimate
    /// transitions into bound transitions.  Clamping is total: any
    /// estimate <= 0 (including large negatives) maps to 1, and any
    /// estimate > window maps to window, so callers may feed raw
    /// arithmetic results without range checks.
    static std::size_t bound_for(double estimate, std::size_t window) noexcept;

    std::size_t window() const noexcept { return window_; }
    double alpha() const noexcept { return alpha_; }
    std::size_t observations() const noexcept { return observations_; }

private:
    std::size_t window_;
    double alpha_;
    double estimate_;
    std::size_t observations_ = 0;
    UpdateObserver observer_;
};

/// Alternative to Eq. 1's exponential average: remember the last
/// `history` observations and bound by their maximum.  More conservative
/// than the EWMA — one big burst keeps the bound high for `history`
/// windows instead of decaying geometrically — at the cost of scrambling
/// more aggressively than needed on calm networks.  Compared against the
/// paper's estimator in bench_ablation.
class SlidingMaxEstimator {
public:
    /// Throws std::invalid_argument for window == 0 or history == 0.
    SlidingMaxEstimator(std::size_t window, std::size_t history = 4);

    /// Incorporates one per-window observation (clamped to the window).
    void update(std::size_t observed_max_burst);

    /// Max of the retained observations; window/2 before any observation;
    /// clamped to [1, window].
    std::size_t bound() const noexcept;

    std::size_t window() const noexcept { return window_; }
    std::size_t history() const noexcept { return history_; }
    std::size_t observations() const noexcept { return observations_; }

private:
    std::size_t window_;
    std::size_t history_;
    std::vector<std::size_t> recent_;  // ring buffer of size <= history
    std::size_t next_slot_ = 0;
    std::size_t observations_ = 0;
};

}  // namespace espread
