// Structured session tracing (observability layer).
//
// The protocol's core claim is dynamic — per-window feedback moves the
// Eq. 1 burst estimator, which reshapes permutations two windows later —
// but SessionResult only exposes per-window aggregates.  This layer records
// the event-level timeline underneath those aggregates: every packet
// departure and loss, retransmission, deadline drop, ACK, estimator move,
// window finalization and playout miss, stamped with the simulated clock
// and attributed to one of four actors (server, data channel, feedback
// channel, client).
//
// Design constraints:
//   * the disabled path must stay allocation-free and branch-cheap: every
//     instrumentation site guards on a raw `TraceSink*` being non-null, so
//     a session with tracing off pays one predictable branch per site and
//     never constructs a TraceEvent;
//   * recording must not perturb simulation determinism: sinks only
//     observe, they never feed back into the RNG or the event queue;
//   * export targets Chrome trace-event JSON (chrome://tracing, Perfetto)
//     with one track per actor, plus a CSV timeline via proto::report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace espread::obs {

/// What happened.  The `arg`/`v0`/`v1` fields of TraceEvent are
/// event-specific; the schema is documented per enumerator.
enum class EventType {
    kPacketSent,        ///< channel: seq = channel packet #, arg = wire bits
    kPacketLost,        ///< channel: seq = channel packet #, arg = wire bits
    kRetransmit,        ///< server: arg = frame index, v0 = attempt #
    kFrameDeadlineDrop, ///< server: arg = frame index (never sent)
    kAckSent,           ///< client: seq = ACK seq, window reported on
    kAckApplied,        ///< server: seq = ACK seq accepted (highest seen)
    kAckStale,          ///< server: seq = out-of-order ACK seq ignored
    kEstimatorUpdate,   ///< server: arg = observed burst, v0/v1 = old/new bound
    kWindowFinalized,   ///< client: arg = window CLF, v0 = window ALF
    kPlayoutMiss,       ///< client: arg = frame index that missed its slot
    kFrameComplete,     ///< client: arg = frame index (last fragment arrived)
    kCorruptRejected,   ///< channel: seq = channel packet #, corrupt header rejected by checksum
    kReordered,         ///< channel: seq = channel packet #, arg = extra delay (ns)
    kDupDropped,        ///< client: duplicate fragment discarded, arg = frame index
    kStaleDropped,      ///< client: packet for a finalized window discarded, arg = frame index
    kGovernorState,     ///< server: arg = new proto::GovernorState, v0 = old state, v1 = consecutive missed feedback windows
    kGovernorAckReject, ///< server: seq = ACK seq, arg = proto::AckRejectReason, v0 = ACK's window
    kGovernorClamp,     ///< server: arg = raw observation, v0 = clamped observation, v1 = bound before the update
    kSloHealth,         ///< fleet: window = epoch, seq = objective index, arg = new telemetry::SloHealth, v0/v1 = fast/slow burn rate
    kRepairSent,        ///< server: seq = packet seq, arg = window base, v0 = span, v1 = rank at send
    kFecRecovered,      ///< server: seq = recovered packet seq, arg = frame index, v0 = decode delay (ms), v1 = receiver rank
    kNackSent,          ///< client: seq = NACK seq, arg = missing-frame count, v0 = rank deficit, v1 = retry round
    kNackServed,        ///< server: seq = NACK seq, arg = retransmitted packets, v0 = repairs sent, v1 = retry round
    kRepairTimeout,     ///< server: feedback watchdog expired, arg = silent windows; repair plane reverts to the fixed credit schedule
    kRepairShed,        ///< server: repair job evicted under overload, seq = NACK seq, arg = its window
};

/// Which simulated component emitted the event (one trace track each).
enum class Actor {
    kServer,
    kDataChannel,
    kFeedbackChannel,
    kClient,
    kGateway,  ///< standalone bottleneck-queue simulations (net::Gateway)
};

const char* event_name(EventType t) noexcept;
const char* actor_name(Actor a) noexcept;

/// One timeline entry.  Plain data; meaning of arg/v0/v1 depends on `type`
/// (see EventType).
struct TraceEvent {
    sim::SimTime time = 0;
    EventType type = EventType::kPacketSent;
    Actor actor = Actor::kServer;
    std::size_t window = 0;
    std::uint64_t seq = 0;
    std::int64_t arg = 0;
    double v0 = 0.0;
    double v1 = 0.0;
};

/// Receives trace events.  Implementations must not throw out of record()
/// and must not re-enter the simulation.
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent& e) = 0;
};

/// Ring-buffer sink: keeps the most recent `capacity` events, counting how
/// many older ones were evicted.  Capacity is fixed at construction so a
/// long session cannot grow without bound.
class TraceRecorder final : public TraceSink {
public:
    /// Throws std::invalid_argument for capacity == 0.
    explicit TraceRecorder(std::size_t capacity = 1 << 16);

    void record(const TraceEvent& e) override;

    /// Retained events, oldest first (record order).
    std::vector<TraceEvent> events() const;

    std::size_t size() const noexcept { return count_; }
    std::size_t capacity() const noexcept { return ring_.size(); }
    /// Events overwritten after the ring filled.
    std::size_t evicted() const noexcept { return evicted_; }

    void clear() noexcept;

private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  ///< next write slot
    std::size_t count_ = 0;
    std::size_t evicted_ = 0;
};

/// Renders events as Chrome trace-event JSON (the object form with a
/// "traceEvents" array), loadable in chrome://tracing and Perfetto.  Events
/// are sorted by simulated time (stable), emitted as instant events with
/// microsecond timestamps, one named track (tid) per actor.
std::string chrome_trace_json(std::vector<TraceEvent> events);

/// Convenience: chrome_trace_json to a file.  Throws std::runtime_error on
/// I/O failure.
void write_chrome_trace_file(const std::string& path,
                             std::vector<TraceEvent> events);

}  // namespace espread::obs
