#include "obs/telemetry/snapshot.hpp"

#include <stdexcept>

#include "exp/json.hpp"

namespace espread::obs::telemetry {

namespace {

/// Engine governor-lite state names (mirrors proto::GovernorState; the
/// telemetry layer cannot depend on protocol without inverting the
/// library graph).
const char* kStateNames[4] = {"normal", "degraded", "fallback", "recovering"};

void append_counters(exp::JsonWriter& json, const TelemetryCounters& c) {
    json.begin_object();
    json.key("windows").value(c.windows);
    json.key("unit_losses").value(c.unit_losses);
    json.key("loss_windows").value(c.loss_windows);
    json.key("idle_windows").value(c.idle_windows);
    json.key("acks_delivered").value(c.acks_delivered);
    json.key("acks_lost").value(c.acks_lost);
    json.key("sessions_spawned").value(c.sessions_spawned);
    json.key("sessions_completed").value(c.sessions_completed);
    json.key("governor_windows").begin_array();
    for (std::size_t s = 0; s < 4; ++s) json.value(c.governor_windows[s]);
    json.end_array();
    json.end_object();
}

void append_quantile_histogram(exp::JsonWriter& json,
                               const QuantileHistogram& h) {
    json.begin_object();
    json.key("total").value(h.total());
    json.key("p50").value(h.quantile(0.50));
    json.key("p90").value(h.quantile(0.90));
    json.key("p99").value(h.quantile(0.99));
    json.key("p999").value(h.quantile(0.999));
    json.key("max").value(h.max_bucket_value());
    // Sparse bucket encoding: [index, count] pairs for non-empty buckets,
    // in index order.  tools/espread_report restores the histogram from
    // exactly these pairs.
    json.key("buckets").begin_array();
    for (std::size_t b = 0; b < QuantileHistogram::kBuckets; ++b) {
        if (h.counts()[b] == 0) continue;
        json.begin_array();
        json.value(static_cast<std::uint64_t>(b));
        json.value(h.counts()[b]);
        json.end_array();
    }
    json.end_array();
    json.end_object();
}

}  // namespace

SnapshotRegistry::SnapshotRegistry(std::size_t epoch_steps)
    : epoch_steps_(epoch_steps) {
    if (epoch_steps_ == 0) {
        throw std::invalid_argument("SnapshotRegistry: epoch_steps must be >= 1");
    }
}

const FleetSnapshot& SnapshotRegistry::capture(std::uint64_t step,
                                               const TelemetrySlab* slabs,
                                               std::size_t nslabs) {
    FleetSnapshot s;
    s.epoch = snapshots_.size();
    s.step = step;
    for (std::size_t i = 0; i < nslabs; ++i) {
        s.totals.merge(slabs[i].counters);
        s.clf.merge(slabs[i].window_clf);
        s.loss_run.merge(slabs[i].loss_run);
        s.bound.merge(slabs[i].bound_used);
        s.governor_dwell.merge(slabs[i].governor_dwell);
    }
    if (snapshots_.empty()) {
        s.delta = s.totals;
        s.clf_delta = s.clf;
        s.loss_run_delta = s.loss_run;
        s.bound_delta = s.bound;
        s.governor_dwell_delta = s.governor_dwell;
    } else {
        const FleetSnapshot& prev = snapshots_.back();
        s.delta = TelemetryCounters::delta(s.totals, prev.totals);
        s.clf_delta = QuantileHistogram::delta(s.clf, prev.clf);
        s.loss_run_delta = QuantileHistogram::delta(s.loss_run, prev.loss_run);
        s.bound_delta = QuantileHistogram::delta(s.bound, prev.bound);
        s.governor_dwell_delta =
            QuantileHistogram::delta(s.governor_dwell, prev.governor_dwell);
    }
    snapshots_.push_back(std::move(s));
    return snapshots_.back();
}

void append_snapshot(exp::JsonWriter& json, const FleetSnapshot& s) {
    json.begin_object();
    json.key("epoch").value(s.epoch);
    json.key("step").value(s.step);
    json.key("totals");
    append_counters(json, s.totals);
    json.key("delta");
    append_counters(json, s.delta);
    json.key("clf");
    append_quantile_histogram(json, s.clf);
    json.key("loss_run");
    append_quantile_histogram(json, s.loss_run);
    json.key("bound");
    append_quantile_histogram(json, s.bound);
    json.key("governor_dwell");
    append_quantile_histogram(json, s.governor_dwell);
    json.key("clf_delta");
    append_quantile_histogram(json, s.clf_delta);
    json.key("loss_run_delta");
    append_quantile_histogram(json, s.loss_run_delta);
    json.key("bound_delta");
    append_quantile_histogram(json, s.bound_delta);
    json.key("governor_dwell_delta");
    append_quantile_histogram(json, s.governor_dwell_delta);
    json.end_object();
}

std::string snapshot_series_json(const SnapshotRegistry& registry) {
    exp::JsonWriter json;
    json.begin_object();
    json.key("format").value(std::uint64_t{1});
    json.key("epoch_steps").value(static_cast<std::uint64_t>(registry.epoch_steps()));
    json.key("epochs").value(static_cast<std::uint64_t>(registry.snapshots().size()));
    json.key("snapshots").begin_array();
    for (const FleetSnapshot& s : registry.snapshots()) {
        append_snapshot(json, s);
    }
    json.end_array();
    json.end_object();
    return json.str();
}

void write_snapshot_series(const std::string& path,
                           const SnapshotRegistry& registry) {
    exp::write_text_file(path, snapshot_series_json(registry));
}

namespace {

void prom_counter(std::string& out, const std::string& prefix,
                  const char* name, std::uint64_t v) {
    out += "# TYPE " + prefix + "_" + name + " counter\n";
    out += prefix + "_" + name + " " + std::to_string(v) + "\n";
}

void prom_histogram(std::string& out, const std::string& prefix,
                    const char* name, const QuantileHistogram& h) {
    const std::string metric = prefix + "_" + name;
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < QuantileHistogram::kBuckets; ++b) {
        if (h.counts()[b] == 0) continue;
        cum += h.counts()[b];
        out += metric + "_bucket{le=\"" +
               std::to_string(QuantileHistogram::bucket_upper(b)) + "\"} " +
               std::to_string(cum) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.total()) + "\n";
    out += metric + "_count " + std::to_string(h.total()) + "\n";
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "0.5"},
          std::pair<double, const char*>{0.90, "0.9"},
          std::pair<double, const char*>{0.99, "0.99"},
          std::pair<double, const char*>{0.999, "0.999"}}) {
        out += metric + "{quantile=\"" + label + "\"} " +
               std::to_string(h.quantile(q)) + "\n";
    }
}

}  // namespace

std::string prometheus_text(const FleetSnapshot& s, const std::string& prefix) {
    std::string out;
    out += "# HELP " + prefix + " espread fleet telemetry, epoch " +
           std::to_string(s.epoch) + " (step " + std::to_string(s.step) +
           ")\n";
    prom_counter(out, prefix, "windows_total", s.totals.windows);
    prom_counter(out, prefix, "unit_losses_total", s.totals.unit_losses);
    prom_counter(out, prefix, "loss_windows_total", s.totals.loss_windows);
    prom_counter(out, prefix, "idle_windows_total", s.totals.idle_windows);
    prom_counter(out, prefix, "acks_delivered_total", s.totals.acks_delivered);
    prom_counter(out, prefix, "acks_lost_total", s.totals.acks_lost);
    prom_counter(out, prefix, "sessions_spawned_total",
                 s.totals.sessions_spawned);
    prom_counter(out, prefix, "sessions_completed_total",
                 s.totals.sessions_completed);
    out += "# TYPE " + prefix + "_governor_windows_total counter\n";
    for (std::size_t st = 0; st < 4; ++st) {
        out += prefix + "_governor_windows_total{state=\"" +
               kStateNames[st] + "\"} " +
               std::to_string(s.totals.governor_windows[st]) + "\n";
    }
    // Histogram names are the four telemetry signal names (contracts.hpp
    // kTelemetrySignalNames), matching the snapshot-series keys and the
    // SLO objective spec — previously drifted as window_clf/bound_used.
    prom_histogram(out, prefix, "clf", s.clf);
    prom_histogram(out, prefix, "loss_run", s.loss_run);
    prom_histogram(out, prefix, "bound", s.bound);
    prom_histogram(out, prefix, "governor_dwell", s.governor_dwell);
    return out;
}

}  // namespace espread::obs::telemetry
