// Epoch snapshots of the fleet telemetry plane.
//
// Every K engine steps the SnapshotRegistry folds the per-shard
// TelemetrySlabs — in shard index order, pure integer addition — into an
// immutable FleetSnapshot: cumulative counters and histograms plus the
// delta against the previous snapshot (the epoch's own traffic).  The
// fold happens between steps, when no shard is running, so it needs no
// synchronization and never perturbs the hot path.
//
// Because the epoch clock is the engine step count (never wall time) and
// the folded state is shard-order integer arithmetic, the snapshot
// *series* is byte-identical across shard counts and across runs with
// the same seed (pinned by test_telemetry).  Exporters: a JSON time
// series (`write_snapshot_series`, consumed by tools/espread_report and
// emitted by benches alongside BENCH_*.json) and Prometheus-style text
// exposition of one snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry/slab.hpp"

namespace espread::exp {
class JsonWriter;
}

namespace espread::obs::telemetry {

/// Immutable fold of the whole fleet at one epoch boundary.
struct FleetSnapshot {
    std::uint64_t epoch = 0;  ///< 0-based epoch index
    std::uint64_t step = 0;   ///< engine steps completed when taken

    TelemetryCounters totals;  ///< cumulative since engine start
    TelemetryCounters delta;   ///< this epoch only (totals - previous)

    // Cumulative distributions since engine start.
    QuantileHistogram clf;
    QuantileHistogram loss_run;
    QuantileHistogram bound;
    QuantileHistogram governor_dwell;

    // This epoch's distributions (cumulative minus previous snapshot) —
    // the SLO evaluator's burn-rate inputs.
    QuantileHistogram clf_delta;
    QuantileHistogram loss_run_delta;
    QuantileHistogram bound_delta;
    QuantileHistogram governor_dwell_delta;

    bool operator==(const FleetSnapshot&) const noexcept = default;
};

/// Owns the snapshot series of one engine run.  capture() is called by
/// the engine at epoch boundaries; everything else is read-only.
class SnapshotRegistry {
public:
    /// Throws std::invalid_argument for epoch_steps == 0.
    explicit SnapshotRegistry(std::size_t epoch_steps);

    std::size_t epoch_steps() const noexcept { return epoch_steps_; }

    /// True when `step` completed steps land on an epoch boundary.
    bool due(std::uint64_t step) const noexcept {
        return step % epoch_steps_ == 0;
    }

    /// Folds `nslabs` slabs (in index order) into the next snapshot and
    /// returns it.  Single-threaded: callers must quiesce the shards.
    const FleetSnapshot& capture(std::uint64_t step, const TelemetrySlab* slabs,
                                 std::size_t nslabs);

    const std::vector<FleetSnapshot>& snapshots() const noexcept {
        return snapshots_;
    }
    bool empty() const noexcept { return snapshots_.empty(); }
    const FleetSnapshot& latest() const { return snapshots_.back(); }

private:
    std::size_t epoch_steps_;
    std::vector<FleetSnapshot> snapshots_;
};

/// Appends one snapshot as a JSON object (integers only except the
/// derived per-epoch rates; no wall-clock fields, so a rendered series
/// doubles as a determinism fingerprint).
void append_snapshot(exp::JsonWriter& json, const FleetSnapshot& s);

/// The whole series as one JSON document:
/// {"format":1,"epoch_steps":K,"epochs":N,"snapshots":[...]}.
std::string snapshot_series_json(const SnapshotRegistry& registry);

/// snapshot_series_json to a file (exp::write_text_file semantics).
void write_snapshot_series(const std::string& path,
                           const SnapshotRegistry& registry);

/// Prometheus text exposition (version 0.0.4) of one snapshot's
/// cumulative state: counters as `<prefix>_*_total`, histograms as
/// `_bucket{le="..."}` series with `_sum`-free cumulative counts plus
/// quantile gauges.
std::string prometheus_text(const FleetSnapshot& s,
                            const std::string& prefix = "espread");

}  // namespace espread::obs::telemetry
