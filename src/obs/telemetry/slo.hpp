// Declarative service-level objectives over the fleet snapshot series.
//
// An SloObjective reads one tail signal from each epoch's *delta*
// histogram (e.g. "p99 playout CLF <= 2"), converts it to an error
// budget — at most (1 - quantile) of the epoch's events may exceed the
// threshold — and tracks the classic two-window burn rate:
//
//     burn = (bad / total) / (1 - quantile)
//
// summed over a fast window (reacts in a few epochs) and a slow window
// (ignores blips).  Health is kBreached only when BOTH windows burn
// above their thresholds, kBurning when the fast window alone does —
// the standard multi-window multi-burn-rate alerting shape, clocked by
// engine epochs instead of wall time so evaluations are deterministic
// and replayable from a snapshot series file.
//
// Health transitions are appended to an internal log and, when a
// TraceSink is attached, emitted as EventType::kSloHealth events
// (null-gated, same contract as every other instrumentation site).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry/snapshot.hpp"

namespace espread::obs {
class TraceSink;
}

namespace espread::obs::telemetry {

/// Which per-epoch delta histogram an objective watches.
enum class SloSignal {
    kClf,            ///< per-window playback CLF
    kLossRun,        ///< consecutive-loss run length
    kBound,          ///< Eq. 1 bound used
    kGovernorDwell,  ///< windows per completed governor state visit
};

const char* slo_signal_name(SloSignal s) noexcept;

/// Parses a signal name as printed by slo_signal_name ("clf",
/// "loss_run", "bound", "governor_dwell").  Returns false on unknown
/// names, leaving `out` untouched.
bool parse_slo_signal(const std::string& name, SloSignal& out) noexcept;

/// One objective: "at quantile q, `signal` stays <= threshold", plus the
/// two burn-rate windows that decide how fast budget may be spent.
struct SloObjective {
    std::string name;            ///< label for reports and trace events
    SloSignal signal = SloSignal::kClf;
    std::uint64_t threshold = 2; ///< good event: value <= threshold
    double quantile = 0.99;      ///< budget: at most 1-q of events bad

    std::size_t fast_window = 4;   ///< epochs in the fast burn window
    std::size_t slow_window = 64;  ///< epochs in the slow burn window
    double fast_burn = 14.0;       ///< fast-window burn-rate threshold
    double slow_burn = 6.0;        ///< slow-window burn-rate threshold

    /// Throws std::invalid_argument on nonsensical parameters (quantile
    /// outside [0, 1), zero windows, fast window larger than slow).
    void validate() const;
};

enum class SloHealth { kOk, kBurning, kBreached };

const char* slo_health_name(SloHealth h) noexcept;

/// Point-in-time evaluation of one objective at one epoch.
struct SloStatus {
    SloHealth health = SloHealth::kOk;
    double fast_burn = 0.0;  ///< measured burn over the fast window
    double slow_burn = 0.0;  ///< measured burn over the slow window
};

/// One health change, in evaluation order.
struct SloTransition {
    std::uint64_t epoch = 0;
    std::size_t objective = 0;  ///< index into objectives()
    SloHealth from = SloHealth::kOk;
    SloHealth to = SloHealth::kOk;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
};

/// Feeds snapshots in epoch order, tracks per-objective burn windows and
/// health.  Pure function of the snapshot series: re-running the same
/// series yields the same transitions.
class SloEvaluator {
public:
    /// Validates every objective (throws std::invalid_argument).  `sink`
    /// may be null; when set, health transitions are recorded as
    /// EventType::kSloHealth.
    explicit SloEvaluator(std::vector<SloObjective> objectives,
                          TraceSink* sink = nullptr);

    /// Consumes the next epoch's snapshot.  Must be called in epoch
    /// order (throws std::invalid_argument on out-of-order epochs).
    void on_snapshot(const FleetSnapshot& s);

    const std::vector<SloObjective>& objectives() const noexcept {
        return objectives_;
    }

    /// Latest status of objective `i` (all-kOk before any snapshot).
    const SloStatus& status(std::size_t i) const { return status_.at(i); }

    /// Worst health across all objectives.
    SloHealth overall_health() const noexcept;

    const std::vector<SloTransition>& transitions() const noexcept {
        return transitions_;
    }

    /// True once any objective has ever reached kBreached (sticky; the
    /// report tool's CI exit code).
    bool ever_breached() const noexcept { return ever_breached_; }

private:
    struct EpochSample {
        std::uint64_t bad = 0;
        std::uint64_t total = 0;
    };

    struct ObjectiveState {
        std::vector<EpochSample> samples;  ///< one per consumed epoch
    };

    SloStatus evaluate(std::size_t i) const;

    std::vector<SloObjective> objectives_;
    TraceSink* sink_;
    std::vector<ObjectiveState> state_;
    std::vector<SloStatus> status_;
    std::vector<SloTransition> transitions_;
    bool ever_breached_ = false;
    bool any_epoch_ = false;
    std::uint64_t last_epoch_ = 0;
};

}  // namespace espread::obs::telemetry
