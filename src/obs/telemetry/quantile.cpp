#include "obs/telemetry/quantile.hpp"

#include <cmath>

namespace espread::obs::telemetry {

std::uint64_t QuantileHistogram::quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Nearest-rank: the smallest bucket whose cumulative count reaches
    // ceil(q * total), at least rank 1 so q = 0 reports the minimum.
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
    if (rank == 0) rank = 1;
    if (rank > total_) rank = total_;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        cum += counts_[b];
        if (cum >= rank) return bucket_upper(b);
    }
    return bucket_upper(kBuckets - 1);
}

std::uint64_t QuantileHistogram::count_le(std::uint64_t v) const noexcept {
    const std::size_t last = bucket_for(v);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b <= last; ++b) {
        // The bucket containing v counts only when v is its upper bound:
        // whole buckets only, so the result never overstates.
        if (b == last && bucket_upper(b) != v) break;
        cum += counts_[b];
    }
    return cum;
}

std::uint64_t QuantileHistogram::max_bucket_value() const noexcept {
    for (std::size_t b = kBuckets; b > 0; --b) {
        if (counts_[b - 1] > 0) return bucket_upper(b - 1);
    }
    return 0;
}

}  // namespace espread::obs::telemetry
