#include "obs/telemetry/slo.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace espread::obs::telemetry {

const char* slo_signal_name(SloSignal s) noexcept {
    switch (s) {
        case SloSignal::kClf: return "clf";
        case SloSignal::kLossRun: return "loss_run";
        case SloSignal::kBound: return "bound";
        case SloSignal::kGovernorDwell: return "governor_dwell";
    }
    return "?";
}

bool parse_slo_signal(const std::string& name, SloSignal& out) noexcept {
    if (name == "clf") { out = SloSignal::kClf; return true; }
    if (name == "loss_run") { out = SloSignal::kLossRun; return true; }
    if (name == "bound") { out = SloSignal::kBound; return true; }
    if (name == "governor_dwell") { out = SloSignal::kGovernorDwell; return true; }
    return false;
}

const char* slo_health_name(SloHealth h) noexcept {
    switch (h) {
        case SloHealth::kOk: return "ok";
        case SloHealth::kBurning: return "burning";
        case SloHealth::kBreached: return "breached";
    }
    return "?";
}

void SloObjective::validate() const {
    if (name.empty()) {
        throw std::invalid_argument("SloObjective: name must be non-empty");
    }
    if (!(quantile >= 0.0) || quantile >= 1.0) {
        throw std::invalid_argument("SloObjective: quantile must be in [0, 1)");
    }
    if (fast_window == 0 || slow_window == 0) {
        throw std::invalid_argument("SloObjective: windows must be >= 1 epoch");
    }
    if (fast_window > slow_window) {
        throw std::invalid_argument(
            "SloObjective: fast window must not exceed the slow window");
    }
    if (fast_burn <= 0.0 || slow_burn <= 0.0) {
        throw std::invalid_argument(
            "SloObjective: burn thresholds must be positive");
    }
}

namespace {

const QuantileHistogram& signal_delta(const FleetSnapshot& s, SloSignal sig) {
    switch (sig) {
        case SloSignal::kClf: return s.clf_delta;
        case SloSignal::kLossRun: return s.loss_run_delta;
        case SloSignal::kBound: return s.bound_delta;
        case SloSignal::kGovernorDwell: return s.governor_dwell_delta;
    }
    return s.clf_delta;
}

}  // namespace

SloEvaluator::SloEvaluator(std::vector<SloObjective> objectives,
                           TraceSink* sink)
    : objectives_(std::move(objectives)), sink_(sink) {
    for (const SloObjective& o : objectives_) o.validate();
    state_.resize(objectives_.size());
    status_.resize(objectives_.size());
}

SloStatus SloEvaluator::evaluate(std::size_t i) const {
    const SloObjective& o = objectives_[i];
    const std::vector<EpochSample>& samples = state_[i].samples;

    const auto burn_over = [&](std::size_t window) {
        std::uint64_t bad = 0;
        std::uint64_t total = 0;
        const std::size_t n = samples.size() < window ? samples.size() : window;
        for (std::size_t k = samples.size() - n; k < samples.size(); ++k) {
            bad += samples[k].bad;
            total += samples[k].total;
        }
        if (total == 0) return 0.0;
        const double bad_fraction =
            static_cast<double>(bad) / static_cast<double>(total);
        return bad_fraction / (1.0 - o.quantile);
    };

    SloStatus st;
    st.fast_burn = burn_over(o.fast_window);
    st.slow_burn = burn_over(o.slow_window);
    if (st.fast_burn >= o.fast_burn && st.slow_burn >= o.slow_burn) {
        st.health = SloHealth::kBreached;
    } else if (st.fast_burn >= o.fast_burn) {
        st.health = SloHealth::kBurning;
    } else {
        st.health = SloHealth::kOk;
    }
    return st;
}

void SloEvaluator::on_snapshot(const FleetSnapshot& s) {
    if (any_epoch_ && s.epoch <= last_epoch_) {
        throw std::invalid_argument(
            "SloEvaluator: snapshots must arrive in epoch order");
    }
    any_epoch_ = true;
    last_epoch_ = s.epoch;

    for (std::size_t i = 0; i < objectives_.size(); ++i) {
        const SloObjective& o = objectives_[i];
        const QuantileHistogram& h = signal_delta(s, o.signal);
        EpochSample sample;
        sample.total = h.total();
        sample.bad = h.total() - h.count_le(o.threshold);
        state_[i].samples.push_back(sample);

        const SloStatus next = evaluate(i);
        if (next.health != status_[i].health) {
            SloTransition t;
            t.epoch = s.epoch;
            t.objective = i;
            t.from = status_[i].health;
            t.to = next.health;
            t.fast_burn = next.fast_burn;
            t.slow_burn = next.slow_burn;
            transitions_.push_back(t);
            if (sink_ != nullptr) {
                TraceEvent e;
                e.time = static_cast<sim::SimTime>(s.step);
                e.type = EventType::kSloHealth;
                e.actor = Actor::kServer;
                e.window = static_cast<std::size_t>(s.epoch);
                e.seq = static_cast<std::uint64_t>(i);
                e.arg = static_cast<std::int64_t>(next.health);
                e.v0 = next.fast_burn;
                e.v1 = next.slow_burn;
                sink_->record(e);
            }
        }
        status_[i] = next;
        if (next.health == SloHealth::kBreached) ever_breached_ = true;
    }
}

SloHealth SloEvaluator::overall_health() const noexcept {
    SloHealth worst = SloHealth::kOk;
    for (const SloStatus& st : status_) {
        if (static_cast<int>(st.health) > static_cast<int>(worst)) {
            worst = st.health;
        }
    }
    return worst;
}

}  // namespace espread::obs::telemetry
