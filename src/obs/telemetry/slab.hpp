// Per-shard telemetry slab: the fleet telemetry plane's hot-path sink.
//
// One TelemetrySlab per engine shard, written ONLY by the shard that owns
// it (single-writer, so plain stores — no atomics, no locks) and read
// only between steps, when every shard is idle.  The struct is
// cache-line-aligned and slabs are stored contiguously, so two shards
// never share a line and the disabled path costs exactly one predictable
// null-check branch per instrumentation site (the same contract as
// obs::TraceSink, enforced by espread-lint D4 for the observe_* calls).
//
// Everything in the slab is a uint64 counter or a fixed-size
// QuantileHistogram: folding slabs in shard index order is pure integer
// addition, so an epoch snapshot is byte-identical for any shard count.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/telemetry/quantile.hpp"

namespace espread::obs::telemetry {

/// Monotone fleet counters, one block per slab and (merged) per snapshot.
/// merge() is element-wise addition; delta() the element-wise difference
/// of two states of the same cumulative block.
struct TelemetryCounters {
    std::uint64_t windows = 0;         ///< session-windows executed
    std::uint64_t unit_losses = 0;     ///< lost LDU playback slots
    std::uint64_t loss_windows = 0;    ///< windows with at least one loss
    std::uint64_t idle_windows = 0;    ///< churn gaps (slot unoccupied)
    std::uint64_t acks_delivered = 0;  ///< feedback packets that survived
    std::uint64_t acks_lost = 0;       ///< feedback packets dropped
    std::uint64_t sessions_spawned = 0;    ///< churn arrivals while stepping
    std::uint64_t sessions_completed = 0;  ///< churn departures
    /// Windows run under each engine governor state (indexed by
    /// engine::GovernorLiteConfig state; all-Normal when supervision is
    /// off).  Occupancy reconciles with EngineSummary::governor_windows.
    std::uint64_t governor_windows[4] = {0, 0, 0, 0};

    void merge(const TelemetryCounters& o) noexcept {
        windows += o.windows;
        unit_losses += o.unit_losses;
        loss_windows += o.loss_windows;
        idle_windows += o.idle_windows;
        acks_delivered += o.acks_delivered;
        acks_lost += o.acks_lost;
        sessions_spawned += o.sessions_spawned;
        sessions_completed += o.sessions_completed;
        for (std::size_t s = 0; s < 4; ++s) {
            governor_windows[s] += o.governor_windows[s];
        }
    }

    static TelemetryCounters delta(const TelemetryCounters& now,
                                   const TelemetryCounters& prev) noexcept {
        TelemetryCounters d;
        d.windows = now.windows - prev.windows;
        d.unit_losses = now.unit_losses - prev.unit_losses;
        d.loss_windows = now.loss_windows - prev.loss_windows;
        d.idle_windows = now.idle_windows - prev.idle_windows;
        d.acks_delivered = now.acks_delivered - prev.acks_delivered;
        d.acks_lost = now.acks_lost - prev.acks_lost;
        d.sessions_spawned = now.sessions_spawned - prev.sessions_spawned;
        d.sessions_completed = now.sessions_completed - prev.sessions_completed;
        for (std::size_t s = 0; s < 4; ++s) {
            d.governor_windows[s] =
                now.governor_windows[s] - prev.governor_windows[s];
        }
        return d;
    }

    bool operator==(const TelemetryCounters&) const noexcept = default;
};

/// One shard's telemetry arena.  All observe_* methods are branch-free
/// integer updates; call sites must null-gate the slab pointer so the
/// disabled path stays one predictable branch per site.
struct alignas(64) TelemetrySlab {
    TelemetryCounters counters;
    QuantileHistogram window_clf;     ///< per-window playback CLF
    QuantileHistogram loss_run;       ///< consecutive-loss run lengths
    QuantileHistogram bound_used;     ///< Eq. 1 bound the window was sent with
    QuantileHistogram governor_dwell; ///< windows per completed state visit

    /// One executed session-window: CLF, the bound it was sent with, its
    /// unit losses and the governor state it ran under.
    void observe_window(std::uint64_t clf, std::uint64_t bound,
                        std::uint64_t losses, std::uint8_t gov_state) noexcept {
        ++counters.windows;
        counters.unit_losses += losses;
        counters.loss_windows += losses != 0 ? 1u : 0u;
        ++counters.governor_windows[gov_state];
        window_clf.record(clf);
        bound_used.record(bound);
    }

    /// One maximal run of consecutive lost LDU slots in playback order.
    void observe_loss_run(std::uint64_t length) noexcept {
        loss_run.record(length);
    }

    /// One feedback packet crossing the ACK channel.
    void observe_ack(bool delivered) noexcept {
        if (delivered) {
            ++counters.acks_delivered;
        } else {
            ++counters.acks_lost;
        }
    }

    /// One slot-window spent unoccupied (churn gap).
    void observe_idle() noexcept { ++counters.idle_windows; }

    /// One churn arrival (a slot spawned a fresh session while stepping;
    /// the pool's generation-0 prefill is construction, not churn, and is
    /// deliberately not counted here).
    void observe_spawn() noexcept { ++counters.sessions_spawned; }

    /// One churn departure.
    void observe_complete() noexcept { ++counters.sessions_completed; }

    /// A governor state visit ended after `dwell` windows.
    void observe_governor_exit(std::uint64_t dwell) noexcept {
        governor_dwell.record(dwell);
    }
};

}  // namespace espread::obs::telemetry
