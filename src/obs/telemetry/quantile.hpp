// Fixed-size log-bucketed quantile histogram (fleet telemetry plane).
//
// The paper's perception argument — and the distortion-variance framing of
// the related streaming-code work — is that *tail* behavior decides
// perceived quality, so the telemetry plane is quantile-first: every
// signal lands in one of these histograms and is read back as
// p50/p90/p99/p999, never as a mean alone.
//
// Layout: values 0..31 get one exact bucket each; larger values share
// four sub-buckets per power-of-two octave (HdrHistogram-style), so the
// relative error of a reported quantile is bounded by 25% while the
// bucket count stays fixed at compile time.  CLF, bound and loss-run
// values in a 24-LDU window all fall inside the exact range, so their
// quantiles are exact.
//
// Determinism contract: recording is pure bucket arithmetic (no floats on
// the write path), counts are uint64, and merge() is element-wise
// addition — commutative and associative — so folding per-shard
// histograms in shard order yields byte-identical counts for any shard
// count.  quantile() derives its rank with one double multiply from the
// folded integers, identically on every fold grouping.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace espread::obs::telemetry {

/// Fixed-size histogram over non-negative integer observations with
/// quantile extraction.  POD-sized (no heap), safe to embed in the
/// cache-line-padded per-shard TelemetrySlab.
class QuantileHistogram {
public:
    /// Values below this get one exact bucket each.
    static constexpr std::uint64_t kLinearMax = 32;
    /// First octave covered by log buckets: [32, 64).
    static constexpr unsigned kFirstOctave = 5;
    /// Sub-buckets per octave above the linear range.
    static constexpr std::size_t kSubBuckets = 4;
    /// Octaves 5..63 cover every uint64 value.
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(kLinearMax) +
        (64 - kFirstOctave) * kSubBuckets;

    /// Bucket index of `v` (total order preserved: v1 <= v2 implies
    /// bucket_for(v1) <= bucket_for(v2)).
    static constexpr std::size_t bucket_for(std::uint64_t v) noexcept {
        if (v < kLinearMax) return static_cast<std::size_t>(v);
        const unsigned octave = static_cast<unsigned>(std::bit_width(v)) - 1U;
        const std::size_t sub =
            static_cast<std::size_t>((v >> (octave - 2U)) & 3U);
        return static_cast<std::size_t>(kLinearMax) +
               (octave - kFirstOctave) * kSubBuckets + sub;
    }

    /// Smallest value mapping to bucket `b`.
    static constexpr std::uint64_t bucket_lower(std::size_t b) noexcept {
        if (b < kLinearMax) return b;
        const std::size_t rel = b - static_cast<std::size_t>(kLinearMax);
        const unsigned octave =
            kFirstOctave + static_cast<unsigned>(rel / kSubBuckets);
        const std::uint64_t sub = rel % kSubBuckets;
        return (std::uint64_t{1} << octave) + (sub << (octave - 2U));
    }

    /// Largest value mapping to bucket `b` (the value quantile() reports,
    /// so reported quantiles never understate the true quantile).
    static constexpr std::uint64_t bucket_upper(std::size_t b) noexcept {
        if (b < kLinearMax) return b;
        const std::size_t rel = b - static_cast<std::size_t>(kLinearMax);
        const unsigned octave =
            kFirstOctave + static_cast<unsigned>(rel / kSubBuckets);
        return bucket_lower(b) + (std::uint64_t{1} << (octave - 2U)) - 1;
    }

    /// Records one observation.  Hot path: one bucket index + two adds.
    void record(std::uint64_t v) noexcept {
        ++counts_[bucket_for(v)];
        ++total_;
    }

    /// Records `count` observations of `v` at once.
    void record(std::uint64_t v, std::uint64_t count) noexcept {
        counts_[bucket_for(v)] += count;
        total_ += count;
    }

    /// Element-wise addition: merge(a, b) == recording a's and b's
    /// observations into one histogram (merge == concat, pinned by
    /// test_telemetry).
    void merge(const QuantileHistogram& other) noexcept {
        for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
        total_ += other.total_;
    }

    /// Bucket-wise difference `now - prev`; `prev` must be an earlier
    /// state of the same cumulative histogram (counts monotone).
    static QuantileHistogram delta(const QuantileHistogram& now,
                                   const QuantileHistogram& prev) noexcept {
        QuantileHistogram d;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            d.counts_[b] = now.counts_[b] - prev.counts_[b];
        }
        d.total_ = now.total_ - prev.total_;
        return d;
    }

    std::uint64_t total() const noexcept { return total_; }
    bool empty() const noexcept { return total_ == 0; }

    /// Nearest-rank quantile, reported as the containing bucket's upper
    /// bound (exact for values < kLinearMax).  q outside [0, 1] is
    /// clamped; an empty histogram reports 0.  Monotone in q.
    std::uint64_t quantile(double q) const noexcept;

    /// Observations with value <= v, counting only whole buckets: exact
    /// when v < kLinearMax or v is a bucket upper bound, otherwise a
    /// conservative undercount (partial buckets excluded).  This is the
    /// SLO evaluator's "good event" count.
    std::uint64_t count_le(std::uint64_t v) const noexcept;

    /// Upper bound of the highest non-empty bucket (0 when empty).
    std::uint64_t max_bucket_value() const noexcept;

    const std::array<std::uint64_t, kBuckets>& counts() const noexcept {
        return counts_;
    }

    /// Restores one bucket from a serialized (index, count) pair; out of
    /// range indices are ignored.  Used by the report tool's JSON reader.
    void restore_bucket(std::size_t bucket, std::uint64_t count) noexcept {
        if (bucket >= kBuckets || count == 0) return;
        counts_[bucket] += count;
        total_ += count;
    }

    bool operator==(const QuantileHistogram&) const noexcept = default;

private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
};

}  // namespace espread::obs::telemetry
