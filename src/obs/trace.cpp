#include "obs/trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exp/json.hpp"

namespace espread::obs {

const char* event_name(EventType t) noexcept {
    switch (t) {
        case EventType::kPacketSent: return "PacketSent";
        case EventType::kPacketLost: return "PacketLost";
        case EventType::kRetransmit: return "Retransmit";
        case EventType::kFrameDeadlineDrop: return "FrameDeadlineDrop";
        case EventType::kAckSent: return "AckSent";
        case EventType::kAckApplied: return "AckApplied";
        case EventType::kAckStale: return "AckStale";
        case EventType::kEstimatorUpdate: return "EstimatorUpdate";
        case EventType::kWindowFinalized: return "WindowFinalized";
        case EventType::kPlayoutMiss: return "PlayoutMiss";
        case EventType::kFrameComplete: return "FrameComplete";
        case EventType::kCorruptRejected: return "CorruptRejected";
        case EventType::kReordered: return "Reordered";
        case EventType::kDupDropped: return "DupDropped";
        case EventType::kStaleDropped: return "StaleDropped";
        case EventType::kGovernorState: return "GovernorState";
        case EventType::kGovernorAckReject: return "GovernorAckReject";
        case EventType::kGovernorClamp: return "GovernorClamp";
        case EventType::kSloHealth: return "SloHealth";
        case EventType::kRepairSent: return "RepairSent";
        case EventType::kFecRecovered: return "FecRecovered";
        case EventType::kNackSent: return "NackSent";
        case EventType::kNackServed: return "NackServed";
        case EventType::kRepairTimeout: return "RepairTimeout";
        case EventType::kRepairShed: return "RepairShed";
    }
    return "Unknown";
}

const char* actor_name(Actor a) noexcept {
    switch (a) {
        case Actor::kServer: return "server";
        case Actor::kDataChannel: return "data channel";
        case Actor::kFeedbackChannel: return "feedback channel";
        case Actor::kClient: return "client";
        case Actor::kGateway: return "gateway";
    }
    return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : ring_(capacity) {
    if (capacity == 0) {
        throw std::invalid_argument("TraceRecorder: capacity must be positive");
    }
}

void TraceRecorder::record(const TraceEvent& e) {
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size()) {
        ++count_;
    } else {
        ++evicted_;
    }
}

std::vector<TraceEvent> TraceRecorder::events() const {
    std::vector<TraceEvent> out;
    out.reserve(count_);
    // Oldest retained event sits at head_ once the ring has wrapped.
    const std::size_t start = count_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < count_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

void TraceRecorder::clear() noexcept {
    head_ = 0;
    count_ = 0;
    evicted_ = 0;
}

std::string chrome_trace_json(std::vector<TraceEvent> events) {
    // Stable sort by simulated time: emission order can interleave tracks
    // (the server schedules a whole window's departures ahead of the clock
    // while feedback arrives at real event time), but the exported file
    // must read as one merged timeline — and monotone per track.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.time < b.time;
                     });

    exp::JsonWriter j;
    j.begin_object();
    j.key("displayTimeUnit").value("ms");
    j.key("traceEvents").begin_array();

    constexpr Actor kActors[] = {Actor::kServer, Actor::kDataChannel,
                                 Actor::kFeedbackChannel, Actor::kClient,
                                 Actor::kGateway};
    j.begin_object();
    j.key("name").value("process_name");
    j.key("ph").value("M");
    j.key("pid").value(std::uint64_t{1});
    j.key("args").begin_object().key("name").value("espread session").end_object();
    j.end_object();
    for (const Actor a : kActors) {
        j.begin_object();
        j.key("name").value("thread_name");
        j.key("ph").value("M");
        j.key("pid").value(std::uint64_t{1});
        j.key("tid").value(static_cast<std::uint64_t>(a) + 1);
        j.key("args").begin_object().key("name").value(actor_name(a)).end_object();
        j.end_object();
    }

    for (const TraceEvent& e : events) {
        j.begin_object();
        j.key("name").value(event_name(e.type));
        j.key("ph").value("i");   // instant event
        j.key("s").value("t");    // thread-scoped
        j.key("pid").value(std::uint64_t{1});
        j.key("tid").value(static_cast<std::uint64_t>(e.actor) + 1);
        // Chrome trace timestamps are microseconds; SimTime is nanoseconds.
        j.key("ts").value(static_cast<double>(e.time) / 1e3);
        j.key("args").begin_object();
        j.key("window").value(static_cast<std::uint64_t>(e.window));
        j.key("seq").value(e.seq);
        j.key("arg").value(static_cast<std::int64_t>(e.arg));
        j.key("v0").value(e.v0);
        j.key("v1").value(e.v1);
        j.end_object();
        j.end_object();
    }
    j.end_array();
    j.end_object();
    return j.str();
}

void write_chrome_trace_file(const std::string& path,
                             std::vector<TraceEvent> events) {
    exp::write_text_file(path, chrome_trace_json(std::move(events)));
}

}  // namespace espread::obs
