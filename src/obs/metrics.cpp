#include "obs/metrics.hpp"

#include "exp/json.hpp"

namespace espread::obs {

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
    const auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string{name}, delta);
    } else {
        it->second += delta;
    }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const noexcept {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

sim::Histogram& MetricsRegistry::histogram(std::string_view name) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(std::string{name}, sim::Histogram{}).first->second;
}

const sim::Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const noexcept {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    for (const auto& [name, value] : other.counters_) {
        add_counter(name, value);
    }
    for (const auto& [name, hist] : other.histograms_) {
        histogram(name).merge(hist);
    }
}

void append_metrics(exp::JsonWriter& json, const MetricsRegistry& metrics) {
    json.begin_object();
    json.key("counters").begin_object();
    for (const auto& [name, value] : metrics.counters()) {
        json.key(name).value(value);
    }
    json.end_object();
    json.key("histograms").begin_object();
    for (const auto& [name, hist] : metrics.histograms()) {
        json.key(name).begin_object();
        json.key("total").value(static_cast<std::uint64_t>(hist.total()));
        json.key("mean").value(hist.mean());
        json.key("bins").begin_object();
        for (const auto& [value, count] : hist.bins()) {
            json.key(std::to_string(value))
                .value(static_cast<std::uint64_t>(count));
        }
        json.end_object();
        json.end_object();
    }
    json.end_object();
    json.end_object();
}

}  // namespace espread::obs
