// Named-metric registry (observability layer).
//
// Sessions accumulate named counters and sim::Histogram instances; the
// Monte-Carlo runner merges per-trial registries IN TRIAL ORDER, so the
// merged registry — and its JSON rendering — is byte-identical across
// thread counts, extending the determinism contract of exp::TrialSummary
// to metric output.  Keys are ordered (std::map), which makes iteration,
// merge and serialization order independent of insertion order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/stats.hpp"

namespace espread::exp {
class JsonWriter;
}

namespace espread::obs {

/// Named counters + histograms with deterministic merge.
class MetricsRegistry {
public:
    /// Adds `delta` to the named counter, creating it at zero first.
    void add_counter(std::string_view name, std::uint64_t delta = 1);

    /// Value of a counter; 0 if it was never touched.
    std::uint64_t counter(std::string_view name) const noexcept;

    /// Named histogram handle, created empty on first use.
    sim::Histogram& histogram(std::string_view name);

    /// Read-only histogram lookup; nullptr if it was never created.
    const sim::Histogram* find_histogram(std::string_view name) const noexcept;

    /// Adds every counter and histogram of `other` into this registry.
    /// Associative and key-ordered, so merging per-trial registries in
    /// trial order yields the same bytes regardless of thread count.
    void merge(const MetricsRegistry& other);

    bool empty() const noexcept { return counters_.empty() && histograms_.empty(); }

    const std::map<std::string, std::uint64_t, std::less<>>& counters() const noexcept {
        return counters_;
    }
    const std::map<std::string, sim::Histogram, std::less<>>& histograms() const noexcept {
        return histograms_;
    }

private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, sim::Histogram, std::less<>> histograms_;
};

/// Appends the registry at the writer's current position:
/// {"counters":{name:value,...},
///  "histograms":{name:{"total":n,"mean":m,"bins":{value:count,...}},...}}.
void append_metrics(exp::JsonWriter& json, const MetricsRegistry& metrics);

}  // namespace espread::obs
