// MPEG group-of-pictures patterns (paper §3.2, Fig. 2).
//
// A GOP is the run of frames from one I frame (inclusive) to the next
// (exclusive).  The paper assumes the common practice of a fixed anchor
// spacing, so all GOPs share one display-order pattern such as
// "IBBPBBPBBPBB" (GOP 12) or "IBBPBBPBBPBBPBB" (GOP 15).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "media/ldu.hpp"

namespace espread::media {

/// Immutable display-order GOP pattern.
///
/// Invariants: non-empty, starts with 'I', exactly one 'I', only I/P/B.
class GopPattern {
public:
    /// Parses a pattern string like "IBBPBBPBB".
    /// Throws std::invalid_argument on any invariant violation.
    static GopPattern parse(std::string_view pattern);

    /// The conventional pattern with two B frames between anchors, sized to
    /// `gop_size` frames, e.g. 12 -> IBBPBBPBBPBB.  `gop_size` must be 1 or
    /// a multiple of 3 (throws otherwise).
    static GopPattern standard(std::size_t gop_size);

    std::size_t size() const noexcept { return types_.size(); }
    FrameType type_at(std::size_t pos) const;

    std::size_t anchor_count() const noexcept { return anchors_; }  // I + P
    std::size_t p_count() const noexcept { return anchors_ - 1; }
    std::size_t b_count() const noexcept { return size() - anchors_; }

    /// Display positions of the anchor frames, ascending (position 0 is I).
    const std::vector<std::size_t>& anchor_positions() const noexcept {
        return anchor_positions_;
    }

    std::string to_string() const;

    bool operator==(const GopPattern& rhs) const noexcept = default;

private:
    explicit GopPattern(std::vector<FrameType> types);

    std::vector<FrameType> types_;
    std::vector<std::size_t> anchor_positions_;
    std::size_t anchors_ = 0;
};

}  // namespace espread::media
