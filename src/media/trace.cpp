#include "media/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace espread::media {

namespace {

/// Per-frame lognormal shape parameter for VBR size variation.
constexpr double kSigma = 0.25;

/// Ratio between a clip's maximum GOP size and its mean GOP size used for
/// calibration (empirically ~1.4 for sums of ~12 lognormal frames observed
/// over ~100 GOPs).
constexpr double kPeakToMean = 1.4;

/// Typical MPEG-1 per-frame size ratio I : P : B.
constexpr double kIWeight = 5.0;
constexpr double kPWeight = 2.0;
constexpr double kBWeight = 1.0;

double lognormal_mu(double mean) {
    return std::log(mean) - kSigma * kSigma / 2.0;
}

}  // namespace

const std::vector<MovieStats>& movie_catalog() {
    static const std::vector<MovieStats> catalog{
        {"Jurassic Park", 12, 24.0, 627'760},  // OCR 62'776; see header note
        {"Silence of the Lambs", 12, 24.0, 462'056},
        {"Star Wars", 12, 24.0, 932'710},
        {"Terminator", 12, 24.0, 407'512},
        {"Beauty and the Beast", 15, 30.0, 769'376},
    };
    return catalog;
}

const MovieStats& movie_stats(const std::string& name) {
    for (const MovieStats& m : movie_catalog()) {
        if (m.name == name) return m;
    }
    throw std::invalid_argument("movie_stats: unknown movie \"" + name + "\"");
}

TraceGenerator::TraceGenerator(MovieStats stats, std::uint64_t seed)
    : stats_(std::move(stats)),
      pattern_(GopPattern::standard(stats_.gop_size)),
      rng_(seed) {
    const double mean_gop =
        static_cast<double>(stats_.max_gop_bits) / kPeakToMean;
    const double units = kIWeight +
                         kPWeight * static_cast<double>(pattern_.p_count()) +
                         kBWeight * static_cast<double>(pattern_.b_count());
    const double unit = mean_gop / units;
    mean_i_bits_ = kIWeight * unit;
    mean_p_bits_ = kPWeight * unit;
    mean_b_bits_ = kBWeight * unit;
}

std::vector<Frame> TraceGenerator::generate(std::size_t num_gops) {
    std::vector<Frame> frames;
    generate_into(num_gops, frames);
    return frames;
}

void TraceGenerator::generate_into(std::size_t num_gops,
                                   std::vector<Frame>& out) {
    out.clear();
    out.reserve(num_gops * pattern_.size());
    for (std::size_t g = 0; g < num_gops; ++g) {
        for (std::size_t p = 0; p < pattern_.size(); ++p) {
            Frame f;
            f.index = next_index_++;
            f.gop = next_gop_;
            f.pos_in_gop = p;
            f.type = pattern_.type_at(p);
            double mean = mean_b_bits_;
            if (f.type == FrameType::kI) mean = mean_i_bits_;
            if (f.type == FrameType::kP) mean = mean_p_bits_;
            const double bits = rng_.lognormal(lognormal_mu(mean), kSigma);
            f.size_bits = static_cast<std::size_t>(std::max(1.0, bits));
            out.push_back(f);
        }
        ++next_gop_;
    }
}

double TraceGenerator::mean_bitrate_bps() const noexcept {
    const double mean_gop =
        mean_i_bits_ + mean_p_bits_ * static_cast<double>(pattern_.p_count()) +
        mean_b_bits_ * static_cast<double>(pattern_.b_count());
    return mean_gop * stats_.fps / static_cast<double>(pattern_.size());
}

std::vector<Frame> mjpeg_trace(std::size_t num_frames, double mean_frame_bits,
                               std::uint64_t seed) {
    if (mean_frame_bits <= 0.0) {
        throw std::invalid_argument("mjpeg_trace: mean size must be positive");
    }
    sim::Rng rng{seed};
    std::vector<Frame> frames;
    frames.reserve(num_frames);
    for (std::size_t i = 0; i < num_frames; ++i) {
        Frame f;
        f.index = i;
        f.type = FrameType::kIndependent;
        f.size_bits = static_cast<std::size_t>(
            std::max(1.0, rng.lognormal(lognormal_mu(mean_frame_bits), kSigma)));
        frames.push_back(f);
    }
    return frames;
}

std::vector<Frame> audio_trace(std::size_t count) {
    std::vector<Frame> ldus;
    ldus.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Frame f;
        f.index = i;
        f.type = FrameType::kIndependent;
        f.size_bits = AudioLdu::kBitsPerLdu;
        ldus.push_back(f);
    }
    return ldus;
}

std::size_t max_gop_bits(const std::vector<Frame>& frames) {
    std::map<std::size_t, std::size_t> totals;
    for (const Frame& f : frames) totals[f.gop] += f.size_bits;
    std::size_t best = 0;
    for (const auto& [gop, bits] : totals) best = std::max(best, bits);
    return best;
}

}  // namespace espread::media
