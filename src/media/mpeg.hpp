// MPEG buffer-window modelling: frames of W consecutive GOPs and the
// dependency poset over them (paper §3.2, Fig. 2).
//
// Dependency rules modelled (display order):
//   * the I frame of a GOP depends on nothing;
//   * each P frame depends on the nearest preceding anchor of its GOP;
//   * each B frame depends on the nearest preceding anchor of its GOP and
//     on the nearest following anchor — which, for the trailing B frames of
//     a GOP, is the NEXT GOP's I frame.  Those cross-GOP edges (the dashed
//     arrows of the paper's Fig. 2) exist only for open GOPs; closed GOPs
//     make boundary B frames backward-predicted only.
#pragma once

#include <cstddef>
#include <vector>

#include "media/gop.hpp"
#include "media/ldu.hpp"
#include "poset/poset.hpp"

namespace espread::media {

/// Whether GOP-boundary B frames may reference the neighbouring GOP.
enum class GopBoundary { kOpen, kClosed };

/// Frame metadata (types, GOP coordinates) for a window of `num_gops`
/// consecutive GOPs of `pattern`; sizes are left 0 (see trace.hpp).
/// Playback indices run 0 .. num_gops*pattern.size()-1.
std::vector<Frame> window_frames(const GopPattern& pattern, std::size_t num_gops);

/// Dependency poset over the frames of `window_frames(pattern, num_gops)`.
/// Element ids equal playback indices.  With GopBoundary::kOpen, trailing B
/// frames of GOP g < num_gops-1 additionally depend on the I frame of GOP
/// g+1; the window's final GOP has no successor, so its trailing B frames
/// are backward-only in either mode.
espread::poset::Poset build_dependency_poset(const GopPattern& pattern,
                                             std::size_t num_gops,
                                             GopBoundary boundary = GopBoundary::kOpen);

/// Convenience: the anchor frames (I and P) of the window, ascending.
std::vector<std::size_t> anchor_frames(const GopPattern& pattern, std::size_t num_gops);

}  // namespace espread::media
