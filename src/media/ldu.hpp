// Logical data units (paper §2.1): the atoms of a continuous-media stream.
//
// Following the uniform framework the paper cites, a video LDU is one frame
// and an audio LDU is 266 samples of 8 kHz / 8-bit SunAudio — the amount of
// audio played during one video frame time (1/30 s).
#pragma once

#include <cstddef>
#include <string>

namespace espread::media {

/// Coding type of an LDU.
enum class FrameType {
    kI,            ///< MPEG intra frame (anchor)
    kP,            ///< MPEG predicted frame (anchor)
    kB,            ///< MPEG bidirectional frame (non-anchor)
    kIndependent,  ///< dependency-free LDU (MJPEG frame, audio chunk)
};

/// Single-character tag: 'I', 'P', 'B', 'J'.
char frame_type_char(FrameType t) noexcept;

/// One LDU of a stream.
struct Frame {
    std::size_t index = 0;       ///< playback index within the stream
    FrameType type = FrameType::kIndependent;
    std::size_t size_bits = 0;   ///< encoded size
    std::size_t gop = 0;         ///< GOP number (0 for non-MPEG streams)
    std::size_t pos_in_gop = 0;  ///< display position within its GOP
};

/// Audio LDU geometry from the paper (SunAudio).
struct AudioLdu {
    static constexpr std::size_t kSampleRateHz = 8000;
    static constexpr std::size_t kBitsPerSample = 8;
    static constexpr std::size_t kSamplesPerLdu = 266;  // ~1/30 s of audio
    static constexpr std::size_t kBitsPerLdu = kSamplesPerLdu * kBitsPerSample;
    /// LDUs per second (matches the 30 fps video cadence).
    static constexpr double ldu_rate() noexcept {
        return static_cast<double>(kSampleRateHz) /
               static_cast<double>(kSamplesPerLdu);
    }
};

/// Perceptual tolerance thresholds from the user study the paper cites:
/// consecutive loss beyond 2 video frames (3 audio LDUs) is where user
/// dissatisfaction rises dramatically.
constexpr std::size_t kVideoClfThreshold = 2;
constexpr std::size_t kAudioClfThreshold = 3;

}  // namespace espread::media
