// Synthetic MPEG frame-size traces (paper §4.1 and §5.1).
//
// The paper drives its evaluation with MPEG-1 traces (Jurassic Park for the
// experiments; four more movies for the buffer-requirement discussion) from
// a long-dead FTP server.  The protocol consumes only frame *types* and
// *sizes*, so we substitute a generator calibrated to the per-movie
// statistics the paper publishes — the maximum GOP size in bits — plus the
// standard MPEG-1 I:P:B size ratios.  Frame sizes are lognormal per type
// (the accepted model for VBR MPEG traces), scaled so the empirical maximum
// GOP of a generated clip lands near the published figure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "media/gop.hpp"
#include "media/ldu.hpp"
#include "sim/rng.hpp"

namespace espread::media {

/// Published statistics for one of the paper's five movie traces.
struct MovieStats {
    std::string name;
    std::size_t gop_size;      ///< frames per GOP (12 @ 24 fps, 15 @ 30 fps)
    double fps;                ///< display rate
    std::size_t max_gop_bits;  ///< paper §4.1 figure (see note for Jurassic Park)
};

/// The five traces the paper lists, with their published maximum GOP sizes.
/// NOTE: the OCR gives Jurassic Park as 62 776 bits, an order of magnitude
/// below the other four movies and below its own use in the experiments; we
/// treat it as a dropped digit and use 627 760 (flagged in EXPERIMENTS.md).
const std::vector<MovieStats>& movie_catalog();

/// Catalog lookup by name; throws std::invalid_argument if absent.
const MovieStats& movie_stats(const std::string& name);

/// Deterministic synthetic VBR MPEG trace.
class TraceGenerator {
public:
    /// `stats` selects the calibration target; `seed` fixes the trace.
    TraceGenerator(MovieStats stats, std::uint64_t seed);

    /// GOP pattern implied by stats.gop_size (standard two-B spacing).
    const GopPattern& pattern() const noexcept { return pattern_; }
    const MovieStats& stats() const noexcept { return stats_; }

    /// Generates `num_gops` GOPs of frames with types, GOP coordinates and
    /// sizes.  Repeated calls continue the same clip deterministically.
    std::vector<Frame> generate(std::size_t num_gops);

    /// generate() into a caller-owned buffer (cleared first): no
    /// allocation once `out` has reached capacity.  Same clip continuation
    /// semantics.
    void generate_into(std::size_t num_gops, std::vector<Frame>& out);

    /// Mean encoded bit-rate implied by the calibration (bits per second).
    double mean_bitrate_bps() const noexcept;

private:
    MovieStats stats_;
    GopPattern pattern_;
    sim::Rng rng_;
    double mean_i_bits_;
    double mean_p_bits_;
    double mean_b_bits_;
    std::size_t next_gop_ = 0;
    std::size_t next_index_ = 0;
};

/// Dependency-free MJPEG-style trace: every frame independent, lognormal
/// sizes around `mean_frame_bits`.
std::vector<Frame> mjpeg_trace(std::size_t num_frames, double mean_frame_bits,
                               std::uint64_t seed);

/// Constant-bit-rate audio stream of `count` LDUs (266 samples each).
std::vector<Frame> audio_trace(std::size_t count);

/// Largest total GOP size (bits) in a frame sequence produced by
/// TraceGenerator::generate (groups by Frame::gop).
std::size_t max_gop_bits(const std::vector<Frame>& frames);

}  // namespace espread::media
