#include "media/gop.hpp"

#include <stdexcept>
#include <utility>

namespace espread::media {

GopPattern GopPattern::parse(std::string_view pattern) {
    if (pattern.empty()) throw std::invalid_argument("GopPattern: empty pattern");
    std::vector<FrameType> types;
    types.reserve(pattern.size());
    for (const char c : pattern) {
        switch (c) {
            case 'I': types.push_back(FrameType::kI); break;
            case 'P': types.push_back(FrameType::kP); break;
            case 'B': types.push_back(FrameType::kB); break;
            default:
                throw std::invalid_argument("GopPattern: invalid character in pattern");
        }
    }
    if (types.front() != FrameType::kI) {
        throw std::invalid_argument("GopPattern: pattern must start with I");
    }
    for (std::size_t i = 1; i < types.size(); ++i) {
        if (types[i] == FrameType::kI) {
            throw std::invalid_argument("GopPattern: only one I frame per GOP");
        }
    }
    return GopPattern{std::move(types)};
}

GopPattern GopPattern::standard(std::size_t gop_size) {
    if (gop_size == 0 || (gop_size != 1 && gop_size % 3 != 0)) {
        throw std::invalid_argument(
            "GopPattern::standard: size must be 1 or a multiple of 3");
    }
    // I BB (P BB)* — anchors every third frame.
    std::string normalized = "I";
    std::size_t remaining = gop_size - 1;
    bool first = true;
    while (remaining > 0) {
        if (!first) {
            normalized += 'P';
            --remaining;
            if (remaining == 0) break;
        }
        first = false;
        normalized += 'B';
        --remaining;
        if (remaining > 0) {
            normalized += 'B';
            --remaining;
        }
    }
    return parse(normalized);
}

GopPattern::GopPattern(std::vector<FrameType> types) : types_(std::move(types)) {
    for (std::size_t i = 0; i < types_.size(); ++i) {
        if (types_[i] != FrameType::kB) {
            anchor_positions_.push_back(i);
            ++anchors_;
        }
    }
}

FrameType GopPattern::type_at(std::size_t pos) const {
    if (pos >= types_.size()) throw std::out_of_range("GopPattern::type_at");
    return types_[pos];
}

std::string GopPattern::to_string() const {
    std::string out;
    out.reserve(types_.size());
    for (const FrameType t : types_) out += frame_type_char(t);
    return out;
}

}  // namespace espread::media
