// Reading and writing frame-size traces in the classic text format of the
// MPEG trace archives the paper used (one frame per line:
// "<frame#> <type-letter> <size-bits>", '#'-prefixed comment lines).
//
// The paper's own traces came from ftp://gaia.cs.umass.edu (long gone); if
// a user has any archive trace in this format, it can drive the simulator
// directly instead of the synthetic generator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "media/gop.hpp"
#include "media/ldu.hpp"

namespace espread::media {

/// Parses a trace stream.  Frame numbers in the file are informational
/// (re-indexed 0..n-1 on load); the type letter must be I, P, B or J.
/// GOP coordinates are reconstructed from the I-frame positions (a new GOP
/// starts at every I; leading non-I frames belong to GOP 0).
/// Throws std::invalid_argument with a line number on malformed input.
std::vector<Frame> read_trace(std::istream& in);

/// Convenience: loads from a file path; throws std::runtime_error when the
/// file cannot be opened.
std::vector<Frame> read_trace_file(const std::string& path);

/// Writes frames in the same format (with a generator comment header).
void write_trace(std::ostream& out, const std::vector<Frame>& frames);

/// Convenience: writes to a file path; throws std::runtime_error on I/O
/// failure.
void write_trace_file(const std::string& path, const std::vector<Frame>& frames);

/// Checks that `frames` repeat one GOP pattern consistently and returns
/// it; throws std::invalid_argument if the trace is irregular (the layered
/// protocol requires a fixed pattern, §3.2's "fixed spacing ... often
/// used" assumption).
GopPattern infer_gop_pattern(const std::vector<Frame>& frames);

}  // namespace espread::media
