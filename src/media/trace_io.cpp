#include "media/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace espread::media {

namespace {

FrameType type_from_letter(char c, std::size_t line_no) {
    switch (c) {
        case 'I': return FrameType::kI;
        case 'P': return FrameType::kP;
        case 'B': return FrameType::kB;
        case 'J': return FrameType::kIndependent;
        default:
            throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                        ": unknown frame type letter");
    }
}

}  // namespace

std::vector<Frame> read_trace(std::istream& in) {
    std::vector<Frame> frames;
    std::string line;
    std::size_t line_no = 0;
    std::size_t gop = 0;
    std::size_t pos_in_gop = 0;
    bool seen_any = false;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and blank lines.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream ls{line};
        long long file_index = 0;
        std::string type_token;
        long long size_bits = 0;
        if (!(ls >> file_index)) continue;  // blank/comment-only line
        if (!(ls >> type_token >> size_bits)) {
            throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                        ": expected '<frame#> <type> <bits>'");
        }
        std::string extra;
        if (ls >> extra) {
            throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                        ": trailing fields");
        }
        if (type_token.size() != 1) {
            throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                        ": frame type must be one letter");
        }
        if (size_bits <= 0) {
            throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                        ": frame size must be positive");
        }
        Frame f;
        f.type = type_from_letter(type_token[0], line_no);
        f.size_bits = static_cast<std::size_t>(size_bits);
        if (f.type == FrameType::kI && seen_any) {
            ++gop;
            pos_in_gop = 0;
        }
        f.index = frames.size();
        f.gop = gop;
        f.pos_in_gop = pos_in_gop++;
        seen_any = true;
        frames.push_back(f);
    }
    return frames;
}

std::vector<Frame> read_trace_file(const std::string& path) {
    std::ifstream in{path};
    if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
    return read_trace(in);
}

void write_trace(std::ostream& out, const std::vector<Frame>& frames) {
    out << "# espread frame trace: <frame#> <type> <size-bits>\n";
    for (const Frame& f : frames) {
        out << f.index << ' ' << frame_type_char(f.type) << ' ' << f.size_bits
            << '\n';
    }
}

void write_trace_file(const std::string& path, const std::vector<Frame>& frames) {
    std::ofstream out{path};
    if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
    write_trace(out, frames);
    if (!out) throw std::runtime_error("write_trace_file: write failed: " + path);
}

GopPattern infer_gop_pattern(const std::vector<Frame>& frames) {
    if (frames.empty()) {
        throw std::invalid_argument("infer_gop_pattern: empty trace");
    }
    if (frames.front().type != FrameType::kI) {
        throw std::invalid_argument("infer_gop_pattern: trace must start with I");
    }
    // Pattern of GOP 0.
    std::string pattern;
    for (const Frame& f : frames) {
        if (f.gop > 0) break;
        pattern += frame_type_char(f.type);
    }
    const GopPattern gop = GopPattern::parse(pattern);
    // Every GOP must repeat the pattern; the final GOP may end early but
    // what it contains must still match position for position.
    for (const Frame& f : frames) {
        if (f.pos_in_gop >= gop.size()) {
            throw std::invalid_argument("infer_gop_pattern: irregular GOP length");
        }
        if (f.type != gop.type_at(f.pos_in_gop)) {
            throw std::invalid_argument("infer_gop_pattern: irregular GOP pattern");
        }
    }
    return gop;
}

}  // namespace espread::media
