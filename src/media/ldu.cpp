#include "media/ldu.hpp"

namespace espread::media {

char frame_type_char(FrameType t) noexcept {
    switch (t) {
        case FrameType::kI: return 'I';
        case FrameType::kP: return 'P';
        case FrameType::kB: return 'B';
        case FrameType::kIndependent: return 'J';
    }
    return '?';
}

}  // namespace espread::media
