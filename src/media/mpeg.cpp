#include "media/mpeg.hpp"

namespace espread::media {

std::vector<Frame> window_frames(const GopPattern& pattern, std::size_t num_gops) {
    std::vector<Frame> frames;
    frames.reserve(pattern.size() * num_gops);
    std::size_t index = 0;
    for (std::size_t g = 0; g < num_gops; ++g) {
        for (std::size_t p = 0; p < pattern.size(); ++p) {
            Frame f;
            f.index = index++;
            f.type = pattern.type_at(p);
            f.gop = g;
            f.pos_in_gop = p;
            frames.push_back(f);
        }
    }
    return frames;
}

espread::poset::Poset build_dependency_poset(const GopPattern& pattern,
                                             std::size_t num_gops,
                                             GopBoundary boundary) {
    const std::size_t gop_size = pattern.size();
    const std::size_t n = gop_size * num_gops;
    espread::poset::Poset poset{n};
    const std::vector<std::size_t>& anchors = pattern.anchor_positions();

    for (std::size_t g = 0; g < num_gops; ++g) {
        const std::size_t base = g * gop_size;
        for (std::size_t p = 0; p < gop_size; ++p) {
            const FrameType t = pattern.type_at(p);
            if (t == FrameType::kI) continue;

            // Nearest anchor before position p within this GOP (position 0
            // is always I, so it exists).
            std::size_t prev_anchor = 0;
            for (const std::size_t a : anchors) {
                if (a < p) prev_anchor = a;
            }
            poset.add_dependency(base + p, base + prev_anchor);
            if (t == FrameType::kP) continue;

            // B frames also reference the nearest following anchor.
            bool found_forward = false;
            for (const std::size_t a : anchors) {
                if (a > p) {
                    poset.add_dependency(base + p, base + a);
                    found_forward = true;
                    break;
                }
            }
            if (!found_forward && boundary == GopBoundary::kOpen &&
                g + 1 < num_gops) {
                poset.add_dependency(base + p, base + gop_size);  // next GOP's I
            }
        }
    }
    return poset;
}

std::vector<std::size_t> anchor_frames(const GopPattern& pattern,
                                       std::size_t num_gops) {
    std::vector<std::size_t> out;
    out.reserve(pattern.anchor_count() * num_gops);
    for (std::size_t g = 0; g < num_gops; ++g) {
        for (const std::size_t a : pattern.anchor_positions()) {
            out.push_back(g * pattern.size() + a);
        }
    }
    return out;
}

}  // namespace espread::media
