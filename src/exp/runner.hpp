// Deterministic parallel Monte-Carlo experiment engine.
//
// The figure/table benches (Fig. 8, Table 2, ablations, ...) historically
// reported single-seed estimates; streaming-code evaluation conventionally
// averages loss-resilience metrics over many independent channel
// realizations.  MonteCarloRunner fans a SessionConfig template out over N
// trials on a fixed-size ThreadPool:
//
//   * trial i runs with seed sim::derive_seed(template.seed, i) — a random
//     access into the SplitMix64 stream anchored at the template seed, so
//     the i-th trial's entire simulation is a pure function of (config, i),
//     independent of thread count and scheduling order;
//   * each trial reduces its SessionResult into a TrialOutcome on the
//     worker that ran it;
//   * after all trials finish, outcomes are merged IN TRIAL ORDER with the
//     parallel Welford merge (sim::RunningStats::merge), making the final
//     TrialSummary byte-identical for 1 thread and N threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "exp/json.hpp"
#include "obs/metrics.hpp"
#include "protocol/session.hpp"
#include "sim/stats.hpp"

namespace espread::exp {

/// How a run fans out.
struct RunnerOptions {
    std::size_t trials = 32;
    /// 0 = ThreadPool::hardware_threads().
    std::size_t threads = 0;
    /// --out=FILE: where the bench writes its BENCH_*.json (empty = the
    /// bench's hardcoded default name).
    std::string out_path;
    /// --trace=FILE: additionally run one traced session (trial 0's
    /// realization) and write a Chrome trace-event JSON there.
    std::string trace_path;
};

/// Parses `--trials=N` / `--threads=N` / `--out=FILE` / `--trace=FILE`
/// from a bench's argv, leaving other arguments alone.  Unparsable values
/// keep the defaults passed in.
RunnerOptions parse_runner_args(int argc, char** argv,
                                RunnerOptions defaults = {});

/// Per-trial reduction of one SessionResult (computed on the worker).
struct TrialOutcome {
    std::uint64_t seed = 0;
    sim::RunningStats window_clf;     ///< per-window CLF within the trial
    double alf = 0.0;                 ///< whole-trial aggregate loss factor
    std::size_t unit_losses = 0;
    std::size_t slots = 0;
    std::size_t retransmissions = 0;
    std::size_t windows = 0;
    sim::Histogram clf_histogram;     ///< per-window CLF counts
    obs::MetricsRegistry metrics;     ///< per-session registry (if collected)
};

/// Reduction over all trials of one configuration.
struct TrialSummary {
    std::size_t trials = 0;
    std::size_t threads = 0;

    sim::RunningStats clf_mean;   ///< distribution of per-trial mean CLF
    sim::RunningStats clf_dev;    ///< distribution of per-trial CLF deviation
    sim::RunningStats window_clf; ///< pooled per-window CLF over all trials
    sim::RunningStats alf;        ///< distribution of per-trial ALF
    sim::RunningStats retransmissions;  ///< per-trial retransmission totals
    sim::Histogram clf_histogram; ///< pooled per-window CLF counts
    /// Per-trial registries merged in trial order (empty unless the
    /// template config sets collect_metrics).  Deterministic across thread
    /// counts, like every other field.
    obs::MetricsRegistry metrics;
    std::size_t total_windows = 0;

    double wall_seconds = 0.0;
    /// Simulated buffer windows completed per wall-clock second.
    double windows_per_second = 0.0;
};

/// Fans a SessionConfig over N seeds; see file comment for the determinism
/// contract.
class MonteCarloRunner {
public:
    /// Resolves threads == 0 to the hardware concurrency and starts the
    /// pool; the pool is reused across run() calls.
    explicit MonteCarloRunner(RunnerOptions options);
    ~MonteCarloRunner();

    MonteCarloRunner(const MonteCarloRunner&) = delete;
    MonteCarloRunner& operator=(const MonteCarloRunner&) = delete;

    std::size_t trials() const noexcept { return options_.trials; }
    std::size_t threads() const noexcept;

    /// Runs `trials()` sessions of `template_config` (seeds derived from
    /// template_config.seed) and reduces them.  Throws if any trial's
    /// config fails validation.
    TrialSummary run(const proto::SessionConfig& template_config) const;

private:
    struct Impl;
    RunnerOptions options_;
    std::unique_ptr<Impl> impl_;
};

/// Appends `summary` as a JSON object under the writer's current position:
/// {"trials":..,"threads":..,"wall_seconds":..,"windows_per_second":..,
///  "clf_mean":{stats},...,"clf_histogram":{"0":n0,...},"metrics":{...}}.
/// The "metrics" object is omitted when the merged registry is empty.
void append_summary(JsonWriter& json, const TrialSummary& summary);

/// Appends a RunningStats object: {"count","mean","dev","min","max"}.
void append_stats(JsonWriter& json, const sim::RunningStats& stats);

/// Runs ONE session of `cfg` under trial 0's seed (sim::derive_seed(seed,
/// 0) — the same realization MonteCarloRunner::run gives its first trial)
/// with a TraceRecorder attached, and writes the Chrome trace-event JSON
/// to `path`.  This is how benches honor --trace=FILE without perturbing
/// the parallel run.
void write_session_trace(proto::SessionConfig cfg, const std::string& path);

}  // namespace espread::exp
