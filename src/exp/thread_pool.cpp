#include "exp/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace espread::exp {

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t n = std::max<std::size_t>(threads, 1);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_available_.wait(lock,
                             [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ set and queue drained
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        task();
        lock.lock();
        if (--in_flight_ == 0) all_done_.notify_all();
    }
}

}  // namespace espread::exp
