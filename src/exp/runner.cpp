#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <latch>
#include <vector>

#include "exp/thread_pool.hpp"
#include "sim/rng.hpp"

namespace espread::exp {

namespace {

/// Reduces one finished session into the per-trial accumulator.
TrialOutcome reduce_session(proto::SessionResult r, std::uint64_t seed) {
    TrialOutcome t;
    t.seed = seed;
    t.windows = r.windows.size();
    t.metrics = std::move(r.metrics);
    for (const proto::WindowReport& w : r.windows) {
        t.window_clf.add(static_cast<double>(w.clf));
        t.clf_histogram.add(static_cast<std::int64_t>(w.clf));
        t.retransmissions += w.retransmissions;
    }
    t.unit_losses = r.total.unit_losses;
    t.slots = r.total.slots;
    t.alf = r.total.alf;
    return t;
}

bool parse_size_flag(const char* arg, const char* name, std::size_t* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(arg + len + 1, &end, 10);
    if (end == arg + len + 1 || *end != '\0') return false;
    *out = static_cast<std::size_t>(v);
    return true;
}

bool parse_string_flag(const char* arg, const char* name, std::string* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
    if (arg[len + 1] == '\0') return false;
    *out = arg + len + 1;
    return true;
}

}  // namespace

RunnerOptions parse_runner_args(int argc, char** argv, RunnerOptions defaults) {
    RunnerOptions opts = defaults;
    for (int i = 1; i < argc; ++i) {
        std::size_t v = 0;
        if (parse_size_flag(argv[i], "--trials", &v) && v > 0) {
            opts.trials = v;
        } else if (parse_size_flag(argv[i], "--threads", &v)) {
            opts.threads = v;
        } else if (parse_string_flag(argv[i], "--out", &opts.out_path)) {
        } else if (parse_string_flag(argv[i], "--trace", &opts.trace_path)) {
        }
    }
    return opts;
}

struct MonteCarloRunner::Impl {
    explicit Impl(std::size_t threads) : pool(threads) {}
    ThreadPool pool;
};

MonteCarloRunner::MonteCarloRunner(RunnerOptions options) : options_(options) {
    if (options_.trials == 0) options_.trials = 1;
    const std::size_t t = options_.threads == 0 ? ThreadPool::hardware_threads()
                                                : options_.threads;
    options_.threads = t;
    impl_ = std::make_unique<Impl>(t);
}

MonteCarloRunner::~MonteCarloRunner() = default;

std::size_t MonteCarloRunner::threads() const noexcept {
    return impl_->pool.size();
}

TrialSummary MonteCarloRunner::run(
    const proto::SessionConfig& template_config) const {
    template_config.validate();  // fail fast on the submitting thread

    const std::size_t n = options_.trials;
    std::vector<TrialOutcome> outcomes(n);
    // espread-lint: allow(D1) wall-clock bracket for throughput reporting; never feeds seeds or the sim clock
    const auto start = std::chrono::steady_clock::now();

    {
        std::latch done(static_cast<std::ptrdiff_t>(n));
        for (std::size_t i = 0; i < n; ++i) {
            impl_->pool.submit([&, i] {
                proto::SessionConfig cfg = template_config;
                cfg.seed = sim::derive_seed(template_config.seed, i);
                // A trace sink may not be shared across worker threads:
                // only trial 0 keeps the template's sink.
                if (i != 0) cfg.trace = nullptr;
                outcomes[i] = reduce_session(proto::run_session(cfg), cfg.seed);
                done.count_down();
            });
        }
        done.wait();
    }

    const std::chrono::duration<double> wall =
        // espread-lint: allow(D1) closes the wall-clock bracket opened above
        std::chrono::steady_clock::now() - start;

    // Deterministic reduction: trial order, independent of which thread
    // finished when.  RunningStats::merge is the parallel Welford merge, so
    // pooled moments are exact, not averages-of-averages.
    TrialSummary s;
    s.trials = n;
    s.threads = impl_->pool.size();
    for (const TrialOutcome& t : outcomes) {
        s.clf_mean.add(t.window_clf.mean());
        s.clf_dev.add(t.window_clf.deviation());
        s.window_clf.merge(t.window_clf);
        s.alf.add(t.alf);
        s.retransmissions.add(static_cast<double>(t.retransmissions));
        s.clf_histogram.merge(t.clf_histogram);
        s.metrics.merge(t.metrics);
        s.total_windows += t.windows;
    }
    s.wall_seconds = wall.count();
    s.windows_per_second =
        wall.count() > 0.0 ? static_cast<double>(s.total_windows) / wall.count()
                           : 0.0;
    return s;
}

void append_stats(JsonWriter& json, const sim::RunningStats& stats) {
    json.begin_object();
    json.key("count").value(static_cast<std::uint64_t>(stats.count()));
    json.key("mean").value(stats.mean());
    json.key("dev").value(stats.deviation());
    json.key("min").value(stats.min());
    json.key("max").value(stats.max());
    json.end_object();
}

void append_summary(JsonWriter& json, const TrialSummary& summary) {
    json.begin_object();
    json.key("trials").value(static_cast<std::uint64_t>(summary.trials));
    json.key("threads").value(static_cast<std::uint64_t>(summary.threads));
    json.key("total_windows")
        .value(static_cast<std::uint64_t>(summary.total_windows));
    json.key("wall_seconds").value(summary.wall_seconds);
    json.key("windows_per_second").value(summary.windows_per_second);
    json.key("clf_mean");
    append_stats(json, summary.clf_mean);
    json.key("clf_dev");
    append_stats(json, summary.clf_dev);
    json.key("window_clf");
    append_stats(json, summary.window_clf);
    json.key("alf");
    append_stats(json, summary.alf);
    json.key("retransmissions");
    append_stats(json, summary.retransmissions);
    json.key("clf_histogram").begin_object();
    for (const auto& [clf, count] : summary.clf_histogram.bins()) {
        json.key(std::to_string(clf))
            .value(static_cast<std::uint64_t>(count));
    }
    json.end_object();
    if (!summary.metrics.empty()) {
        json.key("metrics");
        obs::append_metrics(json, summary.metrics);
    }
    json.end_object();
}

void write_session_trace(proto::SessionConfig cfg, const std::string& path) {
    obs::TraceRecorder recorder(1 << 20);
    cfg.seed = sim::derive_seed(cfg.seed, 0);
    cfg.trace = &recorder;
    proto::run_session(std::move(cfg));
    obs::write_chrome_trace_file(path, recorder.events());
}

}  // namespace espread::exp
