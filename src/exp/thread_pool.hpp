// Fixed-size worker pool for the Monte-Carlo experiment engine.
//
// Deliberately minimal: tasks are type-erased thunks, the queue is FIFO,
// and there is no futures machinery — the runner owns result placement
// (each trial writes its own slot of a pre-sized vector) so the pool never
// has to move data between threads.  Determinism of experiment *results*
// is a property of the seed-derivation scheme, not of this pool; the pool
// only affects wall-clock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace espread::exp {

/// Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
public:
    /// Starts `threads` workers (clamped to >= 1).
    explicit ThreadPool(std::size_t threads);

    /// Drains the queue, then joins every worker.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueues one task.  Tasks must not throw (the pool has no channel to
    /// report exceptions); wrap fallible work before submitting.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished executing.
    void wait_idle();

    /// std::thread::hardware_concurrency with a floor of 1 (the standard
    /// allows it to return 0 on unknown platforms).
    static std::size_t hardware_threads() noexcept;

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t in_flight_ = 0;  ///< queued + currently executing tasks
    bool stopping_ = false;
};

}  // namespace espread::exp
