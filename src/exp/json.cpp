#include "exp/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace espread::exp {

void JsonWriter::comma_if_needed() {
    if (need_comma_.empty()) return;
    if (need_comma_.back()) {
        out_ += ',';
    } else {
        need_comma_.back() = true;
    }
}

JsonWriter& JsonWriter::begin_object() {
    comma_if_needed();
    out_ += '{';
    need_comma_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    out_ += '}';
    need_comma_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    comma_if_needed();
    out_ += '[';
    need_comma_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    out_ += ']';
    need_comma_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
    comma_if_needed();
    append_string(name);
    out_ += ':';
    // The separating comma (if any) was emitted for the key; the paired
    // value must not add another.
    need_comma_.back() = false;
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    comma_if_needed();
    if (!std::isfinite(v)) {
        out_ += "null";  // JSON has no Inf/NaN
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    comma_if_needed();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    comma_if_needed();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    comma_if_needed();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
    comma_if_needed();
    append_string(v);
    return *this;
}

void JsonWriter::append_string(std::string_view v) {
    out_ += '"';
    for (const char c : v) {
        switch (c) {
            case '"': out_ += "\\\""; break;
            case '\\': out_ += "\\\\"; break;
            case '\n': out_ += "\\n"; break;
            case '\r': out_ += "\\r"; break;
            case '\t': out_ += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out_ += buf;
                } else {
                    out_ += c;
                }
        }
    }
    out_ += '"';
}

JsonWriter& JsonWriter::null() {
    comma_if_needed();
    out_ += "null";
    return *this;
}

void write_text_file(const std::string& path, const std::string& content) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("write_text_file: cannot open " + path);
    f.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!f) throw std::runtime_error("write_text_file: write failed for " + path);
}

}  // namespace espread::exp
