// Minimal append-only JSON emitter for the machine-readable BENCH_*.json
// artifacts.  No DOM, no parsing — benches stream objects/arrays in the
// order they compute them, and the writer tracks nesting and commas.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace espread::exp {

/// Streaming JSON writer.  Usage:
///   JsonWriter j;
///   j.begin_object();
///   j.key("trials").value(32);
///   j.key("panels").begin_array(); ... j.end_array();
///   j.end_object();
///   write_text_file("BENCH_x.json", j.str());
///
/// Misuse (value without key inside an object, unbalanced end_*) is the
/// caller's bug; the writer keeps the output well-formed for the supported
/// call sequences only.
class JsonWriter {
public:
    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emits `"name":` — must be followed by a value or begin_*.
    JsonWriter& key(std::string_view name);

    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(bool v);
    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v) { return value(std::string_view{v}); }
    JsonWriter& null();

    const std::string& str() const noexcept { return out_; }

private:
    void comma_if_needed();
    void append_string(std::string_view v);

    std::string out_;
    std::vector<bool> need_comma_;  // one flag per open container
};

/// Writes `content` to `path`, replacing the file.  Throws
/// std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace espread::exp
