#include "fec/gf256.hpp"

#include <array>

namespace espread::fec {
namespace {

struct LogTables {
    std::array<std::uint8_t, 256> log{};
    // Doubled antilog table: exp[i] for i in [0, 510) so gf_mul can index
    // log[a] + log[b] (max 508) without a mod-255 reduction.
    std::array<std::uint8_t, 510> exp{};
};

constexpr LogTables make_log_tables() {
    LogTables t{};
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 255; ++i) {
        t.exp[i] = static_cast<std::uint8_t>(x);
        t.exp[i + 255] = static_cast<std::uint8_t>(x);
        t.log[x] = static_cast<std::uint8_t>(i);
        x <<= 1;
        if ((x & 0x100u) != 0) x ^= 0x11Du;
    }
    return t;
}

constexpr LogTables kLog = make_log_tables();

struct SliceTables {
    // lo[c][v] = c * v,  hi[c][v] = c * (v << 4): one row XOR per byte.
    std::array<std::array<std::uint8_t, 16>, 256> lo{};
    std::array<std::array<std::uint8_t, 16>, 256> hi{};
};

constexpr SliceTables make_slice_tables() {
    SliceTables t{};
    for (std::uint32_t c = 0; c < 256; ++c) {
        for (std::uint32_t v = 0; v < 16; ++v) {
            t.lo[c][v] = gf_mul_ref(static_cast<std::uint8_t>(c),
                                    static_cast<std::uint8_t>(v));
            t.hi[c][v] = gf_mul_ref(static_cast<std::uint8_t>(c),
                                    static_cast<std::uint8_t>(v << 4));
        }
    }
    return t;
}

constexpr SliceTables kSlice = make_slice_tables();

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
    if (a == 0 || b == 0) return 0;
    return kLog.exp[static_cast<std::size_t>(kLog.log[a]) + kLog.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) noexcept {
    // a = exp[log a]  =>  a^-1 = exp[255 - log a]; exp[255] == exp[0] == 1.
    return kLog.exp[255u - kLog.log[a]];
}

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) noexcept {
    if (a == 0) return 0;
    return kLog.exp[static_cast<std::size_t>(kLog.log[a]) + 255u -
                    kLog.log[b]];
}

void gf_mul_row_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t c) noexcept {
    if (c == 0) return;
    if (c == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
        }
        return;
    }
    const std::array<std::uint8_t, 16>& lo = kSlice.lo[c];
    const std::array<std::uint8_t, 16>& hi = kSlice.hi[c];
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t v = src[i];
        dst[i] = static_cast<std::uint8_t>(dst[i] ^ lo[v & 0x0Fu] ^
                                           hi[v >> 4]);
    }
}

void gf_mul_row(std::uint8_t* dst, std::size_t n, std::uint8_t c) noexcept {
    if (c == 1) return;
    if (c == 0) {
        for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
        return;
    }
    const std::array<std::uint8_t, 16>& lo = kSlice.lo[c];
    const std::array<std::uint8_t, 16>& hi = kSlice.hi[c];
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t v = dst[i];
        dst[i] = static_cast<std::uint8_t>(lo[v & 0x0Fu] ^ hi[v >> 4]);
    }
}

}  // namespace espread::fec
