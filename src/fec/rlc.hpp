// Sliding-window random-linear streaming code (DESIGN.md §12).
//
// The encoder keeps an elastic window of the last W source symbols and, on
// demand, emits a repair symbol: a random GF(256) linear combination of the
// window, identified on the wire by (base, count, cseed) — the coefficient
// vector is re-expanded from the 64-bit seed at the receiver, so repair
// headers stay small and constant-size.
//
// The decoder runs on-the-fly Gaussian elimination: every arriving source
// or repair symbol is reduced against the stored rows; innovative rows bump
// the received rank (which never decreases), singleton rows decode a source
// symbol and cascade back-substitution through the remaining rows.  The
// decoder also keeps the in-order delivery log the paper's playout metrics
// need: symbol i is delivered in order at the first instant i and every
// j < i are resolved (arrived, decoded, or declared lost by window expiry).
//
// Two operating modes share every line of control flow:
//  * payload mode (symbol_bytes > 0): full byte-level coding, used by the
//    unit/property/fuzz tests and the encoder round-trip;
//  * rank-only mode (symbol_bytes == 0): the simulator never materialises
//    payload bits, so the protocol arm runs the same elimination over the
//    real coefficient vectors to decide *which* lost packets are recovered
//    and *when*, skipping only the payload XORs.  The decoded sets of the
//    two modes are identical by construction (and pinned by tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/rng.hpp"

namespace espread::fec {

/// Largest encoding window / repair span (count travels in one wire byte).
inline constexpr std::size_t kMaxWindow = 255;

/// Expands the repair coefficient vector from its wire seed: `count` bytes,
/// deterministically derived from `cseed`, never all zero (a zero vector
/// would waste the repair; the last coefficient is forced to 1 in that
/// astronomically unlikely draw).
void expand_coefficients(std::uint64_t cseed, std::size_t count,
                         std::uint8_t* out) noexcept;

/// A repair symbol as produced by the encoder (payload mode).
struct RepairSymbol {
    std::uint64_t base = 0;   ///< first source index in the combination
    std::size_t count = 0;    ///< source symbols combined
    std::uint64_t cseed = 0;  ///< coefficient seed
    std::vector<std::uint8_t> payload;
};

/// Elastic-window RLC encoder over fixed-size symbols.
class RlcEncoder {
public:
    /// `max_window` in [1, kMaxWindow]; `symbol_bytes` > 0; `seed` drives
    /// the coefficient draws (sim::Rng stream).
    RlcEncoder(std::size_t max_window, std::size_t symbol_bytes,
               std::uint64_t seed);

    /// Appends a source symbol (zero-padded to symbol_bytes; `len` must not
    /// exceed it) and returns its index.  Slides the window once full.
    std::uint64_t add_source(const std::uint8_t* data, std::size_t len);

    /// Emits a repair over the current window; requires at least one source.
    RepairSymbol make_repair();

    std::uint64_t next_index() const noexcept { return next_; }
    std::uint64_t window_base() const noexcept {
        return next_ > window_ ? next_ - window_ : 0;
    }

private:
    std::size_t window_;
    std::size_t symbol_bytes_;
    sim::Rng rng_;
    std::uint64_t next_ = 0;
    std::vector<std::uint8_t> ring_;  ///< window_ * symbol_bytes_
};

/// On-the-fly Gaussian-elimination decoder with in-order delivery tracking.
class RlcDecoder {
public:
    /// In-order delivery log entry: symbol `index` was resolved at time
    /// `at`; `lost` means it expired out of the encoding window undecoded.
    struct InOrderEvent {
        std::uint64_t index = 0;
        double at = 0.0;
        bool lost = false;
    };

    /// A source symbol recovered from repair equations (not received
    /// directly), with the decode timestamp.
    struct DecodedEvent {
        std::uint64_t index = 0;
        double at = 0.0;
    };

    /// `max_window` in [1, kMaxWindow]; `symbol_bytes` == 0 selects
    /// rank-only mode.
    explicit RlcDecoder(std::size_t max_window, std::size_t symbol_bytes = 0);

    /// A source symbol arrived intact at time `at`.  Stale (index below the
    /// current base) and duplicate arrivals are counted and ignored.
    void add_source(std::uint64_t index, const std::uint8_t* data,
                    std::size_t len, double at);

    /// A repair over [base, base+count) with coefficient seed `cseed`
    /// arrived at time `at`.  Returns the number of source symbols newly
    /// decoded by this repair (directly or by cascade).  `payload`/`len`
    /// are ignored in rank-only mode.
    std::size_t add_repair(std::uint64_t base, std::size_t count,
                           std::uint64_t cseed, const std::uint8_t* payload,
                           std::size_t len, double at);

    /// Declares every unresolved symbol below `new_base` lost (the encoder
    /// window has slid past them; no future repair can cover them) and
    /// drops stored rows that reference them.
    void advance_base(std::uint64_t new_base, double at);

    /// End of stream: resolves everything still pending (undecoded symbols
    /// become losses) and flushes the in-order log.
    void close(double at);

    /// Received rank: count of innovative equations (sources + useful
    /// repairs) seen so far.  Never decreases.
    std::size_t rank() const noexcept { return rank_; }

    std::uint64_t base() const noexcept { return base_; }
    std::size_t sources_received() const noexcept { return sources_received_; }
    std::size_t repairs_received() const noexcept { return repairs_received_; }
    /// Repairs that carried no new information (or referenced expired
    /// symbols and had to be discarded).
    std::size_t repairs_redundant() const noexcept { return repairs_redundant_; }
    std::size_t stale_packets() const noexcept { return stale_; }
    std::size_t symbols_lost() const noexcept { return lost_; }

    /// Symbols in [base(), next tracked index) that are neither received,
    /// decoded, nor declared lost — the decoder's rank deficit.  This is
    /// what a receiver-driven repair request (proto::NackRequest) reports:
    /// `unresolved()` fresh repairs over the current window would (with
    /// probability ~1) restore full rank.
    std::size_t unresolved() const noexcept;

    /// Source symbols recovered via repairs, in decode order.
    const std::vector<DecodedEvent>& decoded() const noexcept {
        return decoded_;
    }

    /// In-order delivery log (monotone in index).
    const std::vector<InOrderEvent>& in_order_log() const noexcept {
        return in_order_;
    }

    /// Payload of a resolved-known symbol still inside the tracked span;
    /// nullptr if unknown, lost, expired, or in rank-only mode.
    const std::uint8_t* payload(std::uint64_t index) const noexcept;

private:
    enum class SymState : std::uint8_t { kUnknown, kKnown, kLost };

    struct Sym {
        SymState state = SymState::kUnknown;
        double at = 0.0;
        std::vector<std::uint8_t> payload;
    };

    /// A reduced row: coefficients over source indices [pivot, pivot+len),
    /// with coeffs[0] == 1 (normalised) and coeffs.back() != 0.
    struct Row {
        std::uint64_t pivot = 0;
        std::vector<std::uint8_t> coeffs;
        std::vector<std::uint8_t> payload;
    };

    Sym* sym_at(std::uint64_t index) noexcept;
    const Sym* sym_at(std::uint64_t index) const noexcept;
    void extend_to(std::uint64_t end);
    /// Eliminates resolved columns and reduces against stored pivots.
    /// Returns false if the row vanished (no new information).
    bool reduce_row(Row& r);
    /// Stores a reduced, non-empty row (normalising the pivot coefficient)
    /// and queues it for solving if it became a singleton.
    void store_row(Row&& r);
    /// Marks `index` known and logs it (decoded_ when recovered via rows).
    void mark_known(std::uint64_t index, std::vector<std::uint8_t>&& payload,
                    double at, bool via_repair);
    /// Eliminates the now-known column `index` from every stored row,
    /// queueing remainders and new singletons.
    void substitute(std::uint64_t index);
    /// Processes the solve/pending queues to fixpoint; returns the number
    /// of symbols decoded (recovered via repair equations).
    std::size_t drain(double at);
    void advance_in_order();
    void shrink_front();

    std::size_t window_;
    std::size_t symbol_bytes_;
    std::uint64_t base_ = 0;       ///< lowest index still recoverable
    std::uint64_t lo_ = 0;         ///< index of syms_.front()
    std::uint64_t next_ = 0;       ///< one past the highest index tracked
    std::uint64_t in_order_next_ = 0;
    std::size_t rank_ = 0;
    std::size_t sources_received_ = 0;
    std::size_t repairs_received_ = 0;
    std::size_t repairs_redundant_ = 0;
    std::size_t stale_ = 0;
    std::size_t lost_ = 0;
    double last_in_order_at_ = 0.0;
    std::deque<Sym> syms_;
    std::map<std::uint64_t, Row> rows_;  ///< keyed by pivot (ordered: D2)
    std::vector<DecodedEvent> decoded_;
    std::vector<InOrderEvent> in_order_;
    std::vector<std::uint64_t> solve_queue_;
    std::vector<Row> pending_rows_;
    std::vector<std::uint8_t> coeff_scratch_;
};

}  // namespace espread::fec
