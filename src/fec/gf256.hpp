// GF(256) arithmetic for the sliding-window streaming code (DESIGN.md §12).
//
// The field is GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D, the classic Rizzo/RSE choice); 2 is a primitive element, so
// multiplication runs off 256-entry log/antilog tables.  The bulk kernel
// `gf_mul_row_add` — dst ^= c * src over a byte row — instead uses two
// 256x16 nibble product slices (product(c, x) = lo[c][x & 0xF] ^
// hi[c][x >> 4]), trading the two log lookups + add + antilog per byte for
// two direct loads and one XOR.  All tables are built at compile time, so
// there is no runtime initialisation order to reason about.
#pragma once

#include <cstddef>
#include <cstdint>

namespace espread::fec {

/// Field addition/subtraction (they coincide in characteristic 2).
constexpr std::uint8_t gf_add(std::uint8_t a, std::uint8_t b) noexcept {
    return static_cast<std::uint8_t>(a ^ b);
}

/// Bitwise ("Russian peasant") reference multiply: shift-and-conditionally-
/// reduce, no tables.  The oracle the table-driven path is tested against.
constexpr std::uint8_t gf_mul_ref(std::uint8_t a, std::uint8_t b) noexcept {
    std::uint32_t acc = 0;
    std::uint32_t top = a;
    for (std::uint32_t rest = b; rest != 0; rest >>= 1) {
        if ((rest & 1u) != 0) acc ^= top;
        top <<= 1;
        if ((top & 0x100u) != 0) top ^= 0x11Du;
    }
    return static_cast<std::uint8_t>(acc);
}

/// Table-driven product.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept;

/// Multiplicative inverse; requires a != 0.
std::uint8_t gf_inv(std::uint8_t a) noexcept;

/// Field division a / b; requires b != 0.
std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) noexcept;

/// dst[i] ^= c * src[i] for i in [0, n) — the decoder/encoder workhorse,
/// via the nibble-sliced product tables.  c == 0 is a no-op, c == 1 a XOR.
void gf_mul_row_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t c) noexcept;

/// dst[i] = c * dst[i] for i in [0, n) (row normalisation).
void gf_mul_row(std::uint8_t* dst, std::size_t n, std::uint8_t c) noexcept;

}  // namespace espread::fec
