#include "fec/rlc.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "fec/gf256.hpp"

namespace espread::fec {

namespace {

/// Spans that jump further than this many windows past anything the decoder
/// has seen are treated as corrupt and discarded (a sound cap: a genuine
/// encoder advances its window one source at a time, so legitimate traffic
/// can never outrun the receiver by more than the in-flight span; without
/// the cap a fuzzed 2^60 base would ask the decoder to materialise that
/// many loss events).
constexpr std::uint64_t kMaxForwardWindows = 4;

}  // namespace

void expand_coefficients(std::uint64_t cseed, std::size_t count,
                         std::uint8_t* out) noexcept {
    sim::Rng rng(cseed);
    std::size_t i = 0;
    while (i < count) {
        std::uint64_t bits = rng.next_u64();
        for (int b = 0; b < 8 && i < count; ++b, ++i) {
            out[i] = static_cast<std::uint8_t>(bits & 0xFFu);
            bits >>= 8;
        }
    }
    bool all_zero = true;
    for (std::size_t j = 0; j < count; ++j) {
        if (out[j] != 0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero && count > 0) out[count - 1] = 1;
}

// ---------------------------------------------------------------------------
// Encoder

RlcEncoder::RlcEncoder(std::size_t max_window, std::size_t symbol_bytes,
                       std::uint64_t seed)
    : window_(max_window), symbol_bytes_(symbol_bytes), rng_(seed) {
    if (window_ == 0 || window_ > kMaxWindow) {
        throw std::invalid_argument("RlcEncoder: window must be in [1, 255]");
    }
    if (symbol_bytes_ == 0) {
        throw std::invalid_argument("RlcEncoder: symbol_bytes must be > 0");
    }
    ring_.assign(window_ * symbol_bytes_, 0);
}

std::uint64_t RlcEncoder::add_source(const std::uint8_t* data,
                                     std::size_t len) {
    if (len > symbol_bytes_) {
        throw std::invalid_argument("RlcEncoder: source exceeds symbol size");
    }
    const std::uint64_t index = next_++;
    std::uint8_t* slot =
        ring_.data() + (index % window_) * symbol_bytes_;
    std::fill(slot, slot + symbol_bytes_, std::uint8_t{0});
    std::copy(data, data + len, slot);
    return index;
}

RepairSymbol RlcEncoder::make_repair() {
    if (next_ == 0) {
        throw std::logic_error("RlcEncoder: repair before any source");
    }
    RepairSymbol r;
    r.base = window_base();
    r.count = static_cast<std::size_t>(next_ - r.base);
    r.cseed = rng_.next_u64();
    std::uint8_t coeffs[kMaxWindow];
    expand_coefficients(r.cseed, r.count, coeffs);
    r.payload.assign(symbol_bytes_, 0);
    for (std::size_t j = 0; j < r.count; ++j) {
        const std::uint8_t* src =
            ring_.data() + ((r.base + j) % window_) * symbol_bytes_;
        gf_mul_row_add(r.payload.data(), src, symbol_bytes_, coeffs[j]);
    }
    return r;
}

// ---------------------------------------------------------------------------
// Decoder

RlcDecoder::RlcDecoder(std::size_t max_window, std::size_t symbol_bytes)
    : window_(max_window), symbol_bytes_(symbol_bytes) {
    if (window_ == 0 || window_ > kMaxWindow) {
        throw std::invalid_argument("RlcDecoder: window must be in [1, 255]");
    }
    coeff_scratch_.resize(kMaxWindow);
}

RlcDecoder::Sym* RlcDecoder::sym_at(std::uint64_t index) noexcept {
    if (index < lo_ || index >= next_) return nullptr;
    return &syms_[static_cast<std::size_t>(index - lo_)];
}

const RlcDecoder::Sym* RlcDecoder::sym_at(std::uint64_t index) const noexcept {
    if (index < lo_ || index >= next_) return nullptr;
    return &syms_[static_cast<std::size_t>(index - lo_)];
}

std::size_t RlcDecoder::unresolved() const noexcept {
    std::size_t n = 0;
    for (std::uint64_t i = std::max(base_, lo_); i < next_; ++i) {
        const Sym* s = sym_at(i);
        if (s != nullptr && s->state == SymState::kUnknown) ++n;
    }
    return n;
}

void RlcDecoder::extend_to(std::uint64_t end) {
    while (next_ < end) {
        syms_.emplace_back();
        ++next_;
    }
}

const std::uint8_t* RlcDecoder::payload(std::uint64_t index) const noexcept {
    if (symbol_bytes_ == 0) return nullptr;
    const Sym* s = sym_at(index);
    if (s == nullptr || s->state != SymState::kKnown) return nullptr;
    return s->payload.data();
}

void RlcDecoder::add_source(std::uint64_t index, const std::uint8_t* data,
                            std::size_t len, double at) {
    // A source beyond any plausible in-flight span is corrupt input.
    if (index > next_ && index - next_ > kMaxForwardWindows * window_) {
        ++stale_;
        return;
    }
    // Source `index` proves the encoder window has slid past index - W.
    if (index + 1 > window_) advance_base(index + 1 - window_, at);
    if (index < base_) {
        ++stale_;
        return;
    }
    extend_to(index + 1);
    Sym* s = sym_at(index);
    if (s->state != SymState::kUnknown) {
        ++stale_;  // duplicate delivery
        return;
    }
    ++sources_received_;
    ++rank_;  // e_index is always innovative (solved symbols are eliminated
              // from every stored row eagerly, so no stored combination can
              // equal a bare unknown)
    std::vector<std::uint8_t> body;
    if (symbol_bytes_ > 0) {
        const std::size_t n = std::min(len, symbol_bytes_);
        body.assign(symbol_bytes_, 0);
        if (data != nullptr) std::copy(data, data + n, body.begin());
    }
    mark_known(index, std::move(body), at, /*via_repair=*/false);
    substitute(index);
    drain(at);
    advance_in_order();
    shrink_front();
}

std::size_t RlcDecoder::add_repair(std::uint64_t base, std::size_t count,
                                   std::uint64_t cseed,
                                   const std::uint8_t* payload_bytes,
                                   std::size_t len, double at) {
    ++repairs_received_;
    if (count == 0 || count > kMaxWindow ||
        base > std::numeric_limits<std::uint64_t>::max() - count) {
        ++repairs_redundant_;
        return 0;
    }
    if (base > next_ && base - next_ > kMaxForwardWindows * window_) {
        ++repairs_redundant_;
        return 0;
    }
    // The repair's span pins down the encoder state: symbols below `base`
    // have left the encoding window, symbols up to base+count were sent.
    if (base > base_) advance_base(base, at);
    extend_to(base + count);

    expand_coefficients(cseed, count, coeff_scratch_.data());

    // Eliminate resolved columns; a span touching lost or already-expired
    // state cannot contribute.
    std::vector<std::uint8_t> y;
    if (symbol_bytes_ > 0) {
        y.assign(symbol_bytes_, 0);
        if (payload_bytes != nullptr) {
            const std::size_t n = std::min(len, symbol_bytes_);
            std::copy(payload_bytes, payload_bytes + n, y.begin());
        }
    }
    for (std::size_t j = 0; j < count; ++j) {
        const std::uint8_t c = coeff_scratch_[j];
        if (c == 0) continue;
        const std::uint64_t idx = base + j;
        const Sym* s = sym_at(idx);
        if (s == nullptr || s->state == SymState::kLost) {
            ++repairs_redundant_;
            return 0;
        }
        if (s->state == SymState::kKnown) {
            if (symbol_bytes_ > 0) {
                gf_mul_row_add(y.data(), s->payload.data(), symbol_bytes_, c);
            }
            coeff_scratch_[j] = 0;
        }
    }

    // Trim to the unknown support.
    std::size_t first = 0;
    while (first < count && coeff_scratch_[first] == 0) ++first;
    if (first == count) {
        ++repairs_redundant_;  // everything already resolved
        advance_in_order();
        shrink_front();
        return 0;
    }
    std::size_t last = count;
    while (coeff_scratch_[last - 1] == 0) --last;

    Row r;
    r.pivot = base + first;
    r.coeffs.assign(coeff_scratch_.begin() +
                        static_cast<std::ptrdiff_t>(first),
                    coeff_scratch_.begin() + static_cast<std::ptrdiff_t>(last));
    r.payload = std::move(y);
    if (!reduce_row(r)) {
        ++repairs_redundant_;
        advance_in_order();
        shrink_front();
        return 0;
    }
    ++rank_;
    store_row(std::move(r));
    const std::size_t n_decoded = drain(at);
    advance_in_order();
    shrink_front();
    return n_decoded;
}

bool RlcDecoder::reduce_row(Row& r) {
    for (;;) {
        // Eliminate any column that resolved since the row was formed.
        std::size_t j = 0;
        while (j < r.coeffs.size()) {
            const std::uint8_t c = r.coeffs[j];
            if (c != 0) {
                const Sym* s = sym_at(r.pivot + j);
                if (s != nullptr && s->state == SymState::kKnown) {
                    if (symbol_bytes_ > 0) {
                        gf_mul_row_add(r.payload.data(), s->payload.data(),
                                       symbol_bytes_, c);
                    }
                    r.coeffs[j] = 0;
                } else if (s == nullptr || s->state == SymState::kLost) {
                    // Derived rows can reference columns that have since
                    // expired; they carry no recoverable information.
                    return false;
                }
            }
            ++j;
        }
        while (!r.coeffs.empty() && r.coeffs.front() == 0) {
            r.coeffs.erase(r.coeffs.begin());
            ++r.pivot;
        }
        while (!r.coeffs.empty() && r.coeffs.back() == 0) r.coeffs.pop_back();
        if (r.coeffs.empty()) return false;

        auto it = rows_.find(r.pivot);
        if (it == rows_.end()) return true;

        // r -= r.coeffs[0] * stored (stored rows are pivot-normalised).
        const Row& stored = it->second;
        const std::uint8_t c0 = r.coeffs[0];
        if (stored.coeffs.size() > r.coeffs.size()) {
            r.coeffs.resize(stored.coeffs.size(), 0);
        }
        for (std::size_t k = 0; k < stored.coeffs.size(); ++k) {
            r.coeffs[k] = static_cast<std::uint8_t>(
                r.coeffs[k] ^ gf_mul(c0, stored.coeffs[k]));
        }
        if (symbol_bytes_ > 0) {
            gf_mul_row_add(r.payload.data(), stored.payload.data(),
                           symbol_bytes_, c0);
        }
        // Loop: the pivot strictly advanced, so this terminates.
    }
}

void RlcDecoder::store_row(Row&& r) {
    const std::uint8_t inv = gf_inv(r.coeffs[0]);
    if (inv != 1) {
        gf_mul_row(r.coeffs.data(), r.coeffs.size(), inv);
        if (symbol_bytes_ > 0) {
            gf_mul_row(r.payload.data(), r.payload.size(), inv);
        }
    }
    const std::uint64_t pivot = r.pivot;
    const bool singleton = r.coeffs.size() == 1;
    rows_.insert_or_assign(pivot, std::move(r));
    if (singleton) solve_queue_.push_back(pivot);
}

void RlcDecoder::mark_known(std::uint64_t index,
                            std::vector<std::uint8_t>&& payload, double at,
                            bool via_repair) {
    Sym* s = sym_at(index);
    s->state = SymState::kKnown;
    s->at = at;
    if (symbol_bytes_ > 0) s->payload = std::move(payload);
    if (via_repair) decoded_.push_back({index, at});
}

void RlcDecoder::substitute(std::uint64_t index) {
    const Sym* s = sym_at(index);
    auto it = rows_.begin();
    while (it != rows_.end() && it->first <= index) {
        Row& row = it->second;
        if (it->first == index) {
            // The row was led by this symbol: what remains is a derived
            // equation over the later unknowns.
            Row rest = std::move(row);
            it = rows_.erase(it);
            if (symbol_bytes_ > 0) {
                gf_mul_row_add(rest.payload.data(), s->payload.data(),
                               symbol_bytes_, rest.coeffs[0]);
            }
            rest.coeffs[0] = 0;
            pending_rows_.push_back(std::move(rest));
            continue;
        }
        const std::uint64_t off = index - it->first;
        if (off < row.coeffs.size() && row.coeffs[off] != 0) {
            if (symbol_bytes_ > 0) {
                gf_mul_row_add(row.payload.data(), s->payload.data(),
                               symbol_bytes_, row.coeffs[off]);
            }
            row.coeffs[static_cast<std::size_t>(off)] = 0;
            while (!row.coeffs.empty() && row.coeffs.back() == 0) {
                row.coeffs.pop_back();
            }
            // The pivot coefficient is untouched (off > 0), so the row
            // cannot vanish; it can become a singleton.
            if (row.coeffs.size() == 1) solve_queue_.push_back(it->first);
        }
        ++it;
    }
}

std::size_t RlcDecoder::drain(double at) {
    std::size_t n_decoded = 0;
    while (!solve_queue_.empty() || !pending_rows_.empty()) {
        if (!solve_queue_.empty()) {
            const std::uint64_t p = solve_queue_.back();
            solve_queue_.pop_back();
            auto it = rows_.find(p);
            if (it == rows_.end() || it->second.coeffs.size() != 1) continue;
            Row row = std::move(it->second);
            rows_.erase(it);
            mark_known(p, std::move(row.payload), at, /*via_repair=*/true);
            ++n_decoded;
            substitute(p);
            continue;
        }
        Row r = std::move(pending_rows_.back());
        pending_rows_.pop_back();
        if (reduce_row(r)) store_row(std::move(r));
        // A vanished derived row is simply dropped: its information was
        // already counted when the original equation arrived.
    }
    return n_decoded;
}

void RlcDecoder::advance_base(std::uint64_t new_base, double at) {
    if (new_base <= base_) return;
    extend_to(new_base);
    for (std::uint64_t idx = std::max(lo_, base_); idx < new_base; ++idx) {
        Sym* s = sym_at(idx);
        if (s->state == SymState::kUnknown) {
            s->state = SymState::kLost;
            s->at = at;
            ++lost_;
        }
    }
    // Stored rows pivoted below the new base reference expired unknowns.
    while (!rows_.empty() && rows_.begin()->first < new_base) {
        rows_.erase(rows_.begin());
    }
    base_ = new_base;
    advance_in_order();
    shrink_front();
}

void RlcDecoder::close(double at) {
    advance_base(next_, at);
    advance_in_order();
    shrink_front();
}

void RlcDecoder::advance_in_order() {
    while (in_order_next_ < next_) {
        const Sym* s = sym_at(in_order_next_);
        if (s == nullptr || s->state == SymState::kUnknown) break;
        const double t = std::max(s->at, last_in_order_at_);
        last_in_order_at_ = t;
        in_order_.push_back({in_order_next_, t, s->state == SymState::kLost});
        ++in_order_next_;
    }
}

void RlcDecoder::shrink_front() {
    const std::uint64_t limit = std::min(base_, in_order_next_);
    while (lo_ < limit && !syms_.empty()) {
        syms_.pop_front();
        ++lo_;
    }
}

}  // namespace espread::fec
